package graph

// This file implements the CSR (compressed sparse row) read snapshot of a
// topology: vertexes densely renumbered to int32 indexes, adjacency as
// offset+edge arrays, and parallel arrays carrying identifiers and tuple
// pointers. The snapshot is immutable — DML never touches it; the owning
// graph view lazily rebuilds one when its topology version moves on.
//
// The point is the paper's §5–§7 performance argument taken to its
// hardware conclusion: the pointer topology already avoids joins, but its
// traversal kernels still chase *Edge pointers and maintain
// map[*Vertex]bool visited sets on the hottest loops. The CSR variants in
// csr_kernels.go walk flat int32 arrays with epoch-stamped visited slabs
// and pooled scratch, allocating nothing in steady state and touching
// memory sequentially per adjacency list.
//
// Determinism contract: the adjacency arrays are laid out in exactly the
// order expand() walks the pointer lists (Out in list order, then — for
// undirected graphs — In skipping self-loops), and vertexes are numbered
// in ascending-ID order, so the CSR kernels emit byte-identical path
// sequences to the pointer kernels they mirror.

import (
	"sync"
)

// CSR is an immutable compressed-sparse-row snapshot of one Graph.
type CSR struct {
	g        *Graph
	version  uint64
	directed bool

	// verts/vids/vtuples are parallel arrays over the dense vertex
	// numbering (ascending identifier order).
	verts   []*Vertex
	vids    []int64
	vtuples []uint64
	byID    map[int64]int32

	// edges/eids/etuples are parallel arrays over the dense edge
	// numbering (ascending identifier order).
	edges   []*Edge
	eids    []int64
	etuples []uint64

	// Out view: outAdj/outEdge[outOff[v]:outOff[v+1]] are the To-endpoint
	// and edge indexes of v's outgoing edges, in adjacency-list order.
	outOff  []int32
	outAdj  []int32
	outEdge []int32

	// In view: the incoming counterpart (From endpoints).
	inOff  []int32
	inAdj  []int32
	inEdge []int32

	// Traversal view: what the kernels walk. Directed graphs alias the
	// out view; undirected graphs merge out + in (self-loops once), i.e.
	// expand()'s exact order.
	adjOff  []int32
	adjTo   []int32
	adjEdge []int32

	pool  sync.Pool // of *csrScratch
	apool sync.Pool // of *analyticsScratch (see analytics.go)
}

// BuildCSR snapshots g. The caller must hold the engine's read (or write)
// lock: the build reads the live topology, and the snapshot stays valid
// only until the next mutation (see Fresh).
func BuildCSR(g *Graph) *CSR {
	c := &CSR{g: g, version: g.Version(), directed: g.Directed()}

	// sortedVertices/sortedEdges return the shared immutable order caches;
	// aliasing them is safe because mutators replace, never edit, them.
	c.verts = g.sortedVertices()
	nv := len(c.verts)
	c.vids = make([]int64, nv)
	c.vtuples = make([]uint64, nv)
	c.byID = make(map[int64]int32, nv)
	for i, v := range c.verts {
		c.vids[i] = v.ID
		c.vtuples[i] = v.Tuple
		c.byID[v.ID] = int32(i)
	}

	c.edges = g.sortedEdges()
	ne := len(c.edges)
	c.eids = make([]int64, ne)
	c.etuples = make([]uint64, ne)
	eIdx := make(map[*Edge]int32, ne)
	for i, e := range c.edges {
		c.eids[i] = e.ID
		c.etuples[i] = e.Tuple
		eIdx[e] = int32(i)
	}

	// Out and In views.
	c.outOff = make([]int32, nv+1)
	c.inOff = make([]int32, nv+1)
	for i, v := range c.verts {
		c.outOff[i+1] = c.outOff[i] + int32(len(v.Out))
		c.inOff[i+1] = c.inOff[i] + int32(len(v.In))
	}
	c.outAdj = make([]int32, ne2(c.outOff, nv))
	c.outEdge = make([]int32, len(c.outAdj))
	c.inAdj = make([]int32, ne2(c.inOff, nv))
	c.inEdge = make([]int32, len(c.inAdj))
	for i, v := range c.verts {
		o := c.outOff[i]
		for _, e := range v.Out {
			c.outAdj[o] = c.byID[e.To.ID]
			c.outEdge[o] = eIdx[e]
			o++
		}
		o = c.inOff[i]
		for _, e := range v.In {
			c.inAdj[o] = c.byID[e.From.ID]
			c.inEdge[o] = eIdx[e]
			o++
		}
	}

	// Traversal view.
	if c.directed {
		c.adjOff, c.adjTo, c.adjEdge = c.outOff, c.outAdj, c.outEdge
	} else {
		c.adjOff = make([]int32, nv+1)
		for i, v := range c.verts {
			deg := len(v.Out)
			for _, e := range v.In {
				if e.From != e.To {
					deg++
				}
			}
			c.adjOff[i+1] = c.adjOff[i] + int32(deg)
		}
		c.adjTo = make([]int32, ne2(c.adjOff, nv))
		c.adjEdge = make([]int32, len(c.adjTo))
		for i, v := range c.verts {
			o := c.adjOff[i]
			for _, e := range v.Out {
				c.adjTo[o] = c.byID[e.To.ID]
				c.adjEdge[o] = eIdx[e]
				o++
			}
			for _, e := range v.In {
				if e.From == e.To {
					continue // self-loop already offered via Out
				}
				c.adjTo[o] = c.byID[e.From.ID]
				c.adjEdge[o] = eIdx[e]
				o++
			}
		}
	}

	c.pool.New = func() any {
		return &csrScratch{
			visited:  make([]uint32, nv),
			settledE: make([]uint32, nv),
			settledC: make([]int32, nv),
		}
	}
	c.apool.New = func() any { return &analyticsScratch{} }
	return c
}

func ne2(off []int32, nv int) int32 {
	if nv == 0 {
		return 0
	}
	return off[nv]
}

// Fresh reports whether the snapshot still describes g's current
// topology: same graph object, no mutation since the build.
func (c *CSR) Fresh(g *Graph) bool { return c.g == g && c.version == g.Version() }

// Version returns the topology version the snapshot was built at.
func (c *CSR) Version() uint64 { return c.version }

// NumVertices returns the snapshot's vertex count.
func (c *CSR) NumVertices() int { return len(c.verts) }

// NumEdges returns the snapshot's edge count.
func (c *CSR) NumEdges() int { return len(c.edges) }

// ApproxBytes estimates the snapshot's resident size (index arrays plus
// the id lookup map), for SHOW METRICS.
func (c *CSR) ApproxBytes() int64 {
	n := len(c.vids)*8 + len(c.vtuples)*8 + len(c.verts)*8 +
		len(c.eids)*8 + len(c.etuples)*8 + len(c.edges)*8 +
		(len(c.outOff)+len(c.outAdj)+len(c.outEdge))*4 +
		(len(c.inOff)+len(c.inAdj)+len(c.inEdge))*4 +
		len(c.byID)*24
	if !c.directed {
		n += (len(c.adjOff) + len(c.adjTo) + len(c.adjEdge)) * 4
	}
	return int64(n)
}

// indexOfVertex resolves a live vertex to its dense index, -1 when the
// vertex is not part of the snapshot (pointer identity is required: an
// equal-ID vertex of a different topology must not match, mirroring the
// pointer kernels' identity semantics).
func (c *CSR) indexOfVertex(v *Vertex) int32 {
	if v == nil {
		return -1
	}
	i, ok := c.byID[v.ID]
	if !ok || c.verts[i] != v {
		return -1
	}
	return i
}

// noTarget / badTarget are targetIndex sentinels: no target bound vs a
// bound target that cannot match any snapshot vertex.
const (
	noTarget  int32 = -1
	badTarget int32 = -2
)

func (c *CSR) targetIndex(v *Vertex) int32 {
	if v == nil {
		return noTarget
	}
	if i := c.indexOfVertex(v); i >= 0 {
		return i
	}
	return badTarget
}

// csrNode is one node of a BFS traversal tree held in the scratch arena;
// parents are arena indexes (-1 at the root) so partial paths share
// prefixes without a single heap allocation.
type csrNode struct {
	parent int32
	edge   int32 // adjacency edge index, -1 at the root
	v      int32
	depth  int32
}

// csrSPNode is the shortest-path counterpart, carrying the settled cost.
type csrSPNode struct {
	parent int32
	edge   int32
	v      int32
	depth  int32
	cost   float64
}

// csrHeapItem is one entry of the SPScan priority queue. seq preserves
// insertion order for deterministic tie-breaking, exactly like the
// pointer kernel's spHeap — and since (cost, seq) totally orders entries,
// pop order is implementation-independent.
type csrHeapItem struct {
	cost float64
	seq  int64
	node int32
}

func heapLess(a, b csrHeapItem) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	return a.seq < b.seq
}

// heapPush/heapPop implement a plain binary min-heap over a value slice.
// container/heap would box every Push operand through an interface,
// costing an allocation per candidate — the one thing these kernels must
// not do.
func heapPush(h []csrHeapItem, it csrHeapItem) []csrHeapItem {
	h = append(h, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !heapLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

func heapPop(h []csrHeapItem) (csrHeapItem, []csrHeapItem) {
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && heapLess(h[l], h[m]) {
			m = l
		}
		if r < n && heapLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top, h
}

// csrScratch is the reusable per-traversal state: epoch-stamped visited
// and settled slabs (one array store instead of a map insert per vertex),
// the frontier/stack/queue buffers, the traversal-tree arenas, and the
// iterator structs themselves. One scratch serves exactly one traversal
// at a time; Release returns it to the snapshot's pool, so steady-state
// traversal allocates nothing.
type csrScratch struct {
	epoch   uint32
	visited []uint32 // visited[v] == epoch ⇒ v discovered this traversal

	// SPScan settle accounting: settledC[v] is valid iff settledE[v] == epoch.
	settledE []uint32
	settledC []int32

	dstack []csrFrame // DFS stack frames
	queue  []int32    // BFS FIFO of arena indexes
	nodes  []csrNode  // BFS traversal-tree arena
	sp     []csrSPNode
	heap   []csrHeapItem

	// pathV/pathE are the index-form working path (DFS) or chain
	// materialization buffer (BFS/SP): pathV holds len+1 vertex indexes,
	// pathE len edge indexes.
	pathV []int32
	pathE []int32

	// scratch is the pointer-form Path handed to Prune callbacks,
	// refilled in place per candidate.
	scratch Path

	// The kernels live in the scratch so starting a traversal performs no
	// heap allocation. An iterator becomes invalid the moment its Release
	// runs; the pool may hand its memory to the next traversal.
	dfs csrDFSIter
	bfs csrBFSIter
	spi csrSPIter
}

// getScratch takes a scratch from the pool and opens a new visited epoch.
func (c *CSR) getScratch() *csrScratch {
	s := c.pool.Get().(*csrScratch)
	s.epoch++
	if s.epoch == 0 { // wrapped: old stamps could alias the new epoch
		for i := range s.visited {
			s.visited[i] = 0
		}
		for i := range s.settledE {
			s.settledE[i] = 0
		}
		s.epoch = 1
	}
	return s
}

// settled returns how many times vertex vi has been settled this
// traversal (SPScan's per-vertex k cap).
func (s *csrScratch) settled(vi int32) int32 {
	if s.settledE[vi] != s.epoch {
		return 0
	}
	return s.settledC[vi]
}

func (s *csrScratch) settleInc(vi int32) {
	if s.settledE[vi] != s.epoch {
		s.settledE[vi] = s.epoch
		s.settledC[vi] = 0
	}
	s.settledC[vi]++
}

// sizeI32 resizes a scratch index slice to n, reusing capacity.
func sizeI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// chainIdx fills s.pathV/s.pathE with the BFS arena chain ending at node
// ni, plus an optional closing step.
func (s *csrScratch) chainIdx(ni int32, closeEdge, closeVert int32) {
	length := int(s.nodes[ni].depth)
	if closeEdge >= 0 {
		length++
	}
	s.pathV = sizeI32(s.pathV, length+1)
	s.pathE = sizeI32(s.pathE, length)
	i := length
	if closeEdge >= 0 {
		s.pathV[i] = closeVert
		i--
		s.pathE[i] = closeEdge
	}
	for x := ni; x >= 0; x = s.nodes[x].parent {
		s.pathV[i] = s.nodes[x].v
		if s.nodes[x].edge >= 0 {
			s.pathE[i-1] = s.nodes[x].edge
		}
		i--
	}
}

// spChainIdx is chainIdx over the shortest-path arena.
func (s *csrScratch) spChainIdx(ni int32, closeEdge, closeVert int32) {
	length := int(s.sp[ni].depth)
	if closeEdge >= 0 {
		length++
	}
	s.pathV = sizeI32(s.pathV, length+1)
	s.pathE = sizeI32(s.pathE, length)
	i := length
	if closeEdge >= 0 {
		s.pathV[i] = closeVert
		i--
		s.pathE[i] = closeEdge
	}
	for x := ni; x >= 0; x = s.sp[x].parent {
		s.pathV[i] = s.sp[x].v
		if s.sp[x].edge >= 0 {
			s.pathE[i-1] = s.sp[x].edge
		}
		i--
	}
}

func (s *csrScratch) chainContains(ni, vi int32) bool {
	for x := ni; x >= 0; x = s.nodes[x].parent {
		if s.nodes[x].v == vi {
			return true
		}
	}
	return false
}

func (s *csrScratch) spChainContains(ni, vi int32) bool {
	for x := ni; x >= 0; x = s.sp[x].parent {
		if s.sp[x].v == vi {
			return true
		}
	}
	return false
}

// buildPath resolves an index-form path into a fresh pointer-form Path —
// the deferred materialization that runs only for emitted rows.
func (c *CSR) buildPath(vidx, eidx []int32, cost float64) *Path {
	p := &Path{
		Edges: make([]*Edge, len(eidx)),
		Verts: make([]*Vertex, len(vidx)),
		Cost:  cost,
	}
	for i, vi := range vidx {
		p.Verts[i] = c.verts[vi]
	}
	for i, ei := range eidx {
		p.Edges[i] = c.edges[ei]
	}
	return p
}

// fillPath is buildPath into a reusable scratch Path (for Prune
// candidates); the result is valid only until the next fill.
func (c *CSR) fillPath(p *Path, vidx, eidx []int32, cost float64) *Path {
	if cap(p.Edges) < len(eidx) {
		p.Edges = make([]*Edge, len(eidx))
	} else {
		p.Edges = p.Edges[:len(eidx)]
	}
	if cap(p.Verts) < len(vidx) {
		p.Verts = make([]*Vertex, len(vidx))
	} else {
		p.Verts = p.Verts[:len(vidx)]
	}
	p.Cost = cost
	for i, vi := range vidx {
		p.Verts[i] = c.verts[vi]
	}
	for i, ei := range eidx {
		p.Edges[i] = c.edges[ei]
	}
	return p
}
