// Package graph implements the native in-memory graph structure that backs
// GRFusion's graph views (§3 of the paper).
//
// A Graph stores only the *topology*: vertexes, edges, and adjacency lists.
// Vertex and edge attributes stay in their relational sources; each element
// carries a tuple pointer (a storage RowID) so attributes are reachable in
// O(1), and the id → element hash maps give the reverse O(1) navigation
// from the relational store into the graph (§3.2). The topology therefore
// acts as a traversal index over the relational data.
//
// Graphs are not internally synchronized; the engine serializes access.
package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Vertex is one node of a graph view's topology.
type Vertex struct {
	// ID is the vertex identifier drawn from the vertexes relational-source.
	ID int64
	// Tuple is the tuple pointer (RowID) into the vertexes relational-source.
	Tuple uint64
	// Out and In are the adjacency lists of outgoing and incoming edges.
	Out []*Edge
	In  []*Edge
}

// Edge is one edge of a graph view's topology.
type Edge struct {
	// ID is the edge identifier drawn from the edges relational-source.
	ID int64
	// From and To are the edge endpoints as stored (for undirected graphs
	// the traversal order may be either way).
	From, To *Vertex
	// Tuple is the tuple pointer (RowID) into the edges relational-source.
	Tuple uint64

	// outPos/inPos are the edge's positions within From.Out and To.In,
	// maintained by AddEdge/removal so deleting an edge from a hub vertex
	// is O(1) swap-and-truncate instead of an O(degree) scan. Adjacency
	// order is therefore insertion order only until the first removal.
	outPos, inPos int32
}

// Other returns the endpoint of e that is not v. It panics if v is not an
// endpoint of e.
func (e *Edge) Other(v *Vertex) *Vertex {
	switch v {
	case e.From:
		return e.To
	case e.To:
		return e.From
	default:
		panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %d", v.ID, e.ID))
	}
}

// Graph is the materialized topology of a graph view.
type Graph struct {
	name     string
	directed bool

	vertices map[int64]*Vertex
	edges    map[int64]*Edge

	// version counts topology mutations (vertex/edge add, remove, rename).
	// Immutable derived structures — the sorted iteration-order caches
	// below and the CSR read snapshot — record the version they were built
	// at and are discarded when it moves.
	version atomic.Uint64

	// vertOrder/edgeOrder cache the ascending-ID iteration order served by
	// Vertices/Edges, so VERTEXES/EDGES scans stop paying O(n log n) per
	// statement. Built lazily under orderMu (concurrent readers share one
	// build); mutators drop them by storing nil.
	vertOrder atomic.Pointer[[]*Vertex]
	edgeOrder atomic.Pointer[[]*Edge]
	orderMu   sync.Mutex

	// csr caches the immutable CSR read snapshot of this topology instance.
	// Keeping the cache on the Graph (not the view) means a pinned old
	// topology version retains its own CSR: readers on different versions
	// never thrash one shared slot. Built lazily under csrMu.
	csr   atomic.Pointer[CSR]
	csrMu sync.Mutex
}

// Reserve presizes the vertex and edge maps for about nv and ne further
// insertions, so a bulk load pays one map build instead of a cascade of
// incremental rehashes (each of which re-zeroes a fresh, larger table).
func (g *Graph) Reserve(nv, ne int) {
	if nv > 0 {
		grown := make(map[int64]*Vertex, len(g.vertices)+nv)
		for id, v := range g.vertices {
			grown[id] = v
		}
		g.vertices = grown
	}
	if ne > 0 {
		grown := make(map[int64]*Edge, len(g.edges)+ne)
		for id, e := range g.edges {
			grown[id] = e
		}
		g.edges = grown
	}
}

// mutation kinds for topologyChanged.
const (
	changedVertices = 1 << iota
	changedEdges
)

// topologyChanged bumps the version and drops the affected order caches.
// Callers are the mutators, which the engine runs exclusively; the atomic
// stores keep the invalidation visible to the concurrent readers that
// follow.
func (g *Graph) topologyChanged(what int) {
	g.version.Add(1)
	if what&changedVertices != 0 {
		g.vertOrder.Store(nil)
	}
	if what&changedEdges != 0 {
		g.edgeOrder.Store(nil)
	}
}

// Version returns the topology mutation counter. Derived read structures
// (the CSR snapshot) pair it with the Graph identity to detect staleness.
func (g *Graph) Version() uint64 { return g.version.Load() }

// New creates an empty graph topology.
func New(name string, directed bool) *Graph {
	return &Graph{
		name:     name,
		directed: directed,
		vertices: make(map[int64]*Vertex),
		edges:    make(map[int64]*Edge),
	}
}

// Name returns the graph-view name this topology belongs to.
func (g *Graph) Name() string { return g.name }

// Directed reports whether edges are one-way.
func (g *Graph) Directed() bool { return g.directed }

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.vertices) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Vertex returns the vertex with the given id, or nil.
func (g *Graph) Vertex(id int64) *Vertex { return g.vertices[id] }

// Edge returns the edge with the given id, or nil.
func (g *Graph) Edge(id int64) *Edge { return g.edges[id] }

// AddVertex inserts a vertex with the given identifier and tuple pointer.
func (g *Graph) AddVertex(id int64, tuple uint64) (*Vertex, error) {
	if _, dup := g.vertices[id]; dup {
		return nil, fmt.Errorf("graph %s: duplicate vertex id %d", g.name, id)
	}
	v := &Vertex{ID: id, Tuple: tuple}
	g.vertices[id] = v
	g.topologyChanged(changedVertices)
	return v, nil
}

// AddEdge inserts an edge between existing vertexes. Per §3.1 the endpoints
// of every edge are constrained to be members of the vertex set.
func (g *Graph) AddEdge(id, from, to int64, tuple uint64) (*Edge, error) {
	if _, dup := g.edges[id]; dup {
		return nil, fmt.Errorf("graph %s: duplicate edge id %d", g.name, id)
	}
	fv := g.vertices[from]
	if fv == nil {
		return nil, fmt.Errorf("graph %s: edge %d references missing vertex %d", g.name, id, from)
	}
	tv := g.vertices[to]
	if tv == nil {
		return nil, fmt.Errorf("graph %s: edge %d references missing vertex %d", g.name, id, to)
	}
	e := &Edge{ID: id, From: fv, To: tv, Tuple: tuple}
	g.edges[id] = e
	e.outPos = int32(len(fv.Out))
	fv.Out = append(fv.Out, e)
	e.inPos = int32(len(tv.In))
	tv.In = append(tv.In, e)
	g.topologyChanged(changedEdges)
	return e, nil
}

// RemoveEdge deletes the edge with the given id, reporting whether it existed.
func (g *Graph) RemoveEdge(id int64) bool {
	e, ok := g.edges[id]
	if !ok {
		return false
	}
	delete(g.edges, id)
	e.From.Out = removeOut(e.From.Out, e)
	e.To.In = removeIn(e.To.In, e)
	g.topologyChanged(changedEdges)
	return true
}

// RemoveVertex deletes a vertex and every incident edge, returning the ids
// of the cascaded edges (sorted) and whether the vertex existed.
func (g *Graph) RemoveVertex(id int64) (cascaded []int64, ok bool) {
	v, ok := g.vertices[id]
	if !ok {
		return nil, false
	}
	for _, e := range v.Out {
		cascaded = append(cascaded, e.ID)
	}
	for _, e := range v.In {
		// A self-loop appears in both lists; report it once.
		if e.From != e.To {
			cascaded = append(cascaded, e.ID)
		}
	}
	sort.Slice(cascaded, func(i, j int) bool { return cascaded[i] < cascaded[j] })
	for _, eid := range cascaded {
		g.RemoveEdge(eid)
	}
	delete(g.vertices, id)
	g.topologyChanged(changedVertices)
	return cascaded, true
}

// RenameVertex changes a vertex identifier in place, keeping adjacency
// intact. It supports §3.3.1's identifier-consistency maintenance when the
// relational id attribute is updated.
func (g *Graph) RenameVertex(old, new int64) error {
	v, ok := g.vertices[old]
	if !ok {
		return fmt.Errorf("graph %s: rename of missing vertex %d", g.name, old)
	}
	if old == new {
		return nil
	}
	if _, dup := g.vertices[new]; dup {
		return fmt.Errorf("graph %s: rename to duplicate vertex id %d", g.name, new)
	}
	delete(g.vertices, old)
	v.ID = new
	g.vertices[new] = v
	g.topologyChanged(changedVertices)
	return nil
}

// RenameEdge changes an edge identifier in place.
func (g *Graph) RenameEdge(old, new int64) error {
	e, ok := g.edges[old]
	if !ok {
		return fmt.Errorf("graph %s: rename of missing edge %d", g.name, old)
	}
	if old == new {
		return nil
	}
	if _, dup := g.edges[new]; dup {
		return fmt.Errorf("graph %s: rename to duplicate edge id %d", g.name, new)
	}
	delete(g.edges, old)
	e.ID = new
	g.edges[new] = e
	g.topologyChanged(changedEdges)
	return nil
}

// removeOut deletes e from an Out adjacency list in O(1) by swapping the
// last entry into e's maintained position. Adjacency order is not
// preserved across removals; traversal output order over a given topology
// state is still deterministic because every structure (pointer kernels
// and CSR alike) reads the same lists.
func removeOut(list []*Edge, e *Edge) []*Edge {
	last := len(list) - 1
	if i := int(e.outPos); i != last {
		moved := list[last]
		list[i] = moved
		moved.outPos = int32(i)
	}
	list[last] = nil
	return list[:last]
}

// removeIn is removeOut for an In adjacency list.
func removeIn(list []*Edge, e *Edge) []*Edge {
	last := len(list) - 1
	if i := int(e.inPos); i != last {
		moved := list[last]
		list[i] = moved
		moved.inPos = int32(i)
	}
	list[last] = nil
	return list[:last]
}

// FanOut returns the number of edges leaving v under the graph's
// directedness: the out-degree for directed graphs, the full degree for
// undirected ones (every incident edge can be traversed outward).
func (g *Graph) FanOut(v *Vertex) int {
	if g.directed {
		return len(v.Out)
	}
	return len(v.Out) + len(v.In)
}

// FanIn returns the number of edges entering v (the full degree for
// undirected graphs).
func (g *Graph) FanIn(v *Vertex) int {
	if g.directed {
		return len(v.In)
	}
	return len(v.Out) + len(v.In)
}

// AvgFanOut returns the average fan-out statistic the optimizer keeps per
// graph view (§6.3) to choose between BFS and DFS physical operators.
func (g *Graph) AvgFanOut() float64 {
	if len(g.vertices) == 0 {
		return 0
	}
	if g.directed {
		return float64(len(g.edges)) / float64(len(g.vertices))
	}
	return 2 * float64(len(g.edges)) / float64(len(g.vertices))
}

// sortedVertices returns (building and caching on first use) the vertex
// set in ascending id order. The returned slice is immutable: mutators
// drop the cache rather than edit it, so concurrent readers may share it.
func (g *Graph) sortedVertices() []*Vertex {
	if p := g.vertOrder.Load(); p != nil {
		return *p
	}
	g.orderMu.Lock()
	defer g.orderMu.Unlock()
	if p := g.vertOrder.Load(); p != nil {
		return *p
	}
	vs := make([]*Vertex, 0, len(g.vertices))
	for _, v := range g.vertices {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].ID < vs[j].ID })
	g.vertOrder.Store(&vs)
	return vs
}

// sortedEdges is sortedVertices for the edge set.
func (g *Graph) sortedEdges() []*Edge {
	if p := g.edgeOrder.Load(); p != nil {
		return *p
	}
	g.orderMu.Lock()
	defer g.orderMu.Unlock()
	if p := g.edgeOrder.Load(); p != nil {
		return *p
	}
	es := make([]*Edge, 0, len(g.edges))
	for _, e := range g.edges {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool { return es[i].ID < es[j].ID })
	g.edgeOrder.Store(&es)
	return es
}

// Vertices calls fn for every vertex in ascending id order until fn
// returns false. The order is deterministic to keep query results stable,
// and cached between topology mutations so repeated scans are O(V).
func (g *Graph) Vertices(fn func(*Vertex) bool) {
	for _, v := range g.sortedVertices() {
		if !fn(v) {
			return
		}
	}
}

// Edges calls fn for every edge in ascending id order until fn returns false.
func (g *Graph) Edges(fn func(*Edge) bool) {
	for _, e := range g.sortedEdges() {
		if !fn(e) {
			return
		}
	}
}

// CSRSnapshot returns a CSR read snapshot of the current topology,
// building one if the cached snapshot is stale. onEvent, when non-nil, is
// invoked once per call with whether the cache hit and, on a miss, the
// build time in nanoseconds (callers hang their metrics counters on it).
// Safe for concurrent readers; concurrent builds are collapsed by csrMu.
func (g *Graph) CSRSnapshot(onEvent func(hit bool, buildNS int64)) *CSR {
	if c := g.csr.Load(); c != nil && c.Fresh(g) {
		if onEvent != nil {
			onEvent(true, 0)
		}
		return c
	}
	g.csrMu.Lock()
	defer g.csrMu.Unlock()
	if c := g.csr.Load(); c != nil && c.Fresh(g) {
		if onEvent != nil {
			onEvent(true, 0)
		}
		return c
	}
	start := time.Now()
	c := BuildCSR(g)
	g.csr.Store(c)
	if onEvent != nil {
		onEvent(false, time.Since(start).Nanoseconds())
	}
	return c
}

// Clone returns a deep copy of the topology sharing no mutable state with
// the receiver: fresh Vertex/Edge structs (mutators edit IDs and adjacency
// positions in place) and rebuilt adjacency lists preserving order, so a
// pinned reader of the original never observes the copy's mutations. The
// version counter carries over; derived caches (iteration order, CSR) are
// not copied and rebuild lazily per instance.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		name:     g.name,
		directed: g.directed,
		vertices: make(map[int64]*Vertex, len(g.vertices)),
		edges:    make(map[int64]*Edge, len(g.edges)),
	}
	for id, v := range g.vertices {
		ng.vertices[id] = &Vertex{ID: v.ID, Tuple: v.Tuple}
	}
	for id, e := range g.edges {
		ng.edges[id] = &Edge{
			ID:     e.ID,
			From:   ng.vertices[e.From.ID],
			To:     ng.vertices[e.To.ID],
			Tuple:  e.Tuple,
			outPos: e.outPos,
			inPos:  e.inPos,
		}
	}
	for id, v := range g.vertices {
		nv := ng.vertices[id]
		if len(v.Out) > 0 {
			nv.Out = make([]*Edge, len(v.Out))
			for i, e := range v.Out {
				nv.Out[i] = ng.edges[e.ID]
			}
		}
		if len(v.In) > 0 {
			nv.In = make([]*Edge, len(v.In))
			for i, e := range v.In {
				nv.In[i] = ng.edges[e.ID]
			}
		}
	}
	ng.version.Store(g.version.Load())
	return ng
}

// ApproxBytes estimates the resident size of the topology (vertex/edge
// structs, adjacency slices, and hash maps), for the memory-overhead
// experiment. It deliberately excludes the relational attribute storage:
// the whole point of §3.2 is that the topology does not replicate it.
func (g *Graph) ApproxBytes() int64 {
	const (
		vertexSize   = 64 // struct + map entry overhead
		edgeSize     = 64
		slicePointer = 8
	)
	total := int64(len(g.vertices))*vertexSize + int64(len(g.edges))*edgeSize
	for _, v := range g.vertices {
		total += int64(cap(v.Out)+cap(v.In)) * slicePointer
	}
	return total
}
