package graph

import "fmt"

// Index-form traversal kernels over a CSR snapshot. Each mirrors its
// pointer twin (dfsIter/bfsIter/spIter) decision for decision — same
// expansion order, same filter/prune call points, same emission
// conditions — so the two families produce byte-identical path sequences
// and the pointer kernels remain the differential oracle's reference.
//
// What changes is the machinery: visited sets are epoch-stamped uint32
// slabs instead of maps, traversal trees live in pooled arenas of int32
// nodes instead of heap-allocated pnode chains, and the working state
// (stack frames, FIFO, priority queue, scratch paths, the iterator
// structs themselves) all comes from the snapshot's sync.Pool. Steady
// state a traversal allocates only the paths it actually emits — and
// Step lets existence/count consumers skip even that.

// CSRIterator is the interface of the CSR kernels: a PathIterator whose
// scratch can be stepped without materialization and must be released.
type CSRIterator interface {
	PathIterator
	// Step advances to the next result without materializing a Path.
	// Interleaving Step and Next is allowed; each advances once.
	Step() bool
	// Release returns the traversal's scratch to the snapshot's pool.
	// The iterator (and, for shortest-path, its Err) must not be used
	// afterwards; Release is idempotent.
	Release()
}

func csrTargetOK(targetIdx, vi int32) bool {
	return targetIdx == noTarget || vi == targetIdx
}

func csrOkEdge(c *CSR, s *Spec, pos int, ei, from, to int32) bool {
	if s.FilterEdge == nil {
		return true
	}
	return s.FilterEdge(pos, c.edges[ei], c.verts[from], c.verts[to])
}

// ---------------------------------------------------------------- DFScan

// csrFrame is one DFS stack frame: a cursor over v's adjacency window.
type csrFrame struct {
	v    int32
	next int32
	end  int32
}

type csrDFSIter struct {
	c         *CSR
	spec      Spec
	s         *csrScratch
	startIdx  int32
	targetIdx int32
	depth     int // live frames
	// Emission descriptor filled by step: closeEdge >= 0 adds a cycle
	// closure on top of the working path.
	closeEdge    int32
	closeVert    int32
	pendingStart bool
	done         bool
	released     bool
	halt         stopper
}

// NewCSRDFS creates a depth-first traversal over the snapshot (DFScan).
func NewCSRDFS(c *CSR, spec Spec) CSRIterator {
	s := c.getScratch()
	it := &s.dfs
	*it = csrDFSIter{c: c, spec: spec, s: s, closeEdge: -1,
		halt: stopper{done: spec.Done}}
	it.startIdx = c.indexOfVertex(spec.Start)
	it.targetIdx = c.targetIndex(spec.Target)
	s.pathV = s.pathV[:0]
	s.pathE = s.pathE[:0]
	if it.startIdx < 0 || !spec.admitStart() {
		it.done = true
		return it
	}
	if spec.Policy == VisitGlobal {
		s.visited[it.startIdx] = s.epoch
	}
	s.pathV = append(s.pathV, it.startIdx)
	it.pushFrame(it.startIdx)
	if spec.MinLen <= 0 && csrTargetOK(it.targetIdx, it.startIdx) {
		it.pendingStart = true
	}
	return it
}

func (it *csrDFSIter) onPath(vi int32) bool {
	s := it.s
	if it.spec.Policy == VisitGlobal {
		return s.visited[vi] == s.epoch
	}
	for _, x := range s.pathV {
		if x == vi {
			return true
		}
	}
	return false
}

func (it *csrDFSIter) pushFrame(vi int32) {
	s := it.s
	if it.depth == len(s.dstack) {
		s.dstack = append(s.dstack, csrFrame{})
	}
	f := &s.dstack[it.depth]
	it.depth++
	f.v = vi
	f.next, f.end = it.c.adjOff[vi], it.c.adjOff[vi+1]
	if it.spec.MaxLen > 0 && len(s.pathE) >= it.spec.MaxLen {
		f.next = f.end // at the length bound: nothing to expand
	}
}

func (it *csrDFSIter) popFrame() {
	s := it.s
	it.depth--
	s.pathV = s.pathV[:len(s.pathV)-1]
	if len(s.pathE) > 0 {
		s.pathE = s.pathE[:len(s.pathE)-1]
	}
}

// step advances to the next emission; the result is described by the
// working path plus closeEdge/closeVert.
func (it *csrDFSIter) step() bool {
	if it.released {
		return false
	}
	if it.pendingStart {
		it.pendingStart = false
		it.closeEdge = -1
		return true
	}
	if it.done {
		return false
	}
	s, c := it.s, it.c
	for it.depth > 0 {
		if it.halt.stop() {
			break
		}
		f := &s.dstack[it.depth-1]
		if f.next >= f.end {
			it.popFrame()
			continue
		}
		ai := f.next
		f.next++
		ei, toI := c.adjEdge[ai], c.adjTo[ai]
		pos := len(s.pathE)
		depth := pos + 1

		// Final-depth fast path, as in the pointer kernel.
		if it.spec.MaxLen > 0 && depth == it.spec.MaxLen &&
			it.targetIdx != noTarget && toI != it.targetIdx {
			continue
		}

		if it.onPath(toI) {
			if it.spec.AllowCycle && toI == it.startIdx && depth >= 2 &&
				it.spec.lenOK(depth) && csrTargetOK(it.targetIdx, toI) &&
				csrOkEdge(c, &it.spec, pos, ei, f.v, toI) {
				keep := true
				if it.spec.Prune != nil {
					s.pathV = append(s.pathV, toI)
					s.pathE = append(s.pathE, ei)
					keep = it.spec.Prune(c.fillPath(&s.scratch, s.pathV, s.pathE, 0))
					s.pathV = s.pathV[:len(s.pathV)-1]
					s.pathE = s.pathE[:len(s.pathE)-1]
				}
				if keep {
					it.closeEdge, it.closeVert = ei, toI
					return true
				}
			}
			continue
		}
		if !csrOkEdge(c, &it.spec, pos, ei, f.v, toI) {
			continue
		}
		if it.spec.FilterVertex != nil && !it.spec.FilterVertex(depth, c.verts[toI]) {
			continue
		}
		s.pathE = append(s.pathE, ei)
		s.pathV = append(s.pathV, toI)
		if it.spec.Prune != nil && !it.spec.Prune(c.fillPath(&s.scratch, s.pathV, s.pathE, 0)) {
			s.pathE = s.pathE[:len(s.pathE)-1]
			s.pathV = s.pathV[:len(s.pathV)-1]
			continue
		}
		if it.spec.Policy == VisitGlobal {
			s.visited[toI] = s.epoch
		}
		it.pushFrame(toI)
		if it.spec.lenOK(depth) && csrTargetOK(it.targetIdx, toI) {
			it.closeEdge = -1
			return true
		}
	}
	it.done = true
	return false
}

func (it *csrDFSIter) Step() bool { return it.step() }

func (it *csrDFSIter) Next() *Path {
	if !it.step() {
		return nil
	}
	s := it.s
	if it.closeEdge >= 0 {
		s.pathV = append(s.pathV, it.closeVert)
		s.pathE = append(s.pathE, it.closeEdge)
		p := it.c.buildPath(s.pathV, s.pathE, 0)
		s.pathV = s.pathV[:len(s.pathV)-1]
		s.pathE = s.pathE[:len(s.pathE)-1]
		return p
	}
	return it.c.buildPath(s.pathV, s.pathE, 0)
}

func (it *csrDFSIter) Release() {
	if it.released {
		return
	}
	it.released, it.done = true, true
	s := it.s
	it.s = nil
	it.c.pool.Put(s)
}

// ---------------------------------------------------------------- BFScan

type csrBFSIter struct {
	c         *CSR
	spec      Spec
	s         *csrScratch
	startIdx  int32
	targetIdx int32

	qHead int
	// In-progress expansion: arena index of the node at the logical queue
	// head plus a cursor over its adjacency window.
	cur   int32
	aNext int32
	aEnd  int32

	pendingRoot bool
	// Emission descriptor filled by step.
	emitNode  int32
	closeEdge int32
	closeVert int32
	done      bool
	released  bool
	halt      stopper
}

// NewCSRBFS creates a breadth-first traversal over the snapshot (BFScan).
func NewCSRBFS(c *CSR, spec Spec) CSRIterator {
	s := c.getScratch()
	it := &s.bfs
	*it = csrBFSIter{c: c, spec: spec, s: s, cur: -1, closeEdge: -1,
		halt: stopper{done: spec.Done}}
	it.startIdx = c.indexOfVertex(spec.Start)
	it.targetIdx = c.targetIndex(spec.Target)
	s.queue = s.queue[:0]
	s.nodes = s.nodes[:0]
	it.qHead = 0
	if it.startIdx < 0 || !spec.admitStart() {
		it.done = true
		return it
	}
	s.nodes = append(s.nodes, csrNode{parent: -1, edge: -1, v: it.startIdx})
	s.visited[it.startIdx] = s.epoch
	s.queue = append(s.queue, 0)
	if spec.MinLen <= 0 && csrTargetOK(it.targetIdx, it.startIdx) {
		it.pendingRoot = true
	}
	return it
}

func (it *csrBFSIter) step() bool {
	if it.released {
		return false
	}
	if it.pendingRoot {
		it.pendingRoot = false
		it.emitNode, it.closeEdge = 0, -1
		return true
	}
	s, c := it.s, it.c
	for !it.done {
		if it.halt.stop() {
			break
		}
		if it.cur < 0 {
			if it.qHead >= len(s.queue) {
				break
			}
			ni := s.queue[it.qHead]
			it.qHead++
			if it.spec.MaxLen > 0 && int(s.nodes[ni].depth) >= it.spec.MaxLen {
				continue
			}
			it.cur = ni
			v := s.nodes[ni].v
			it.aNext, it.aEnd = c.adjOff[v], c.adjOff[v+1]
		}
		cur := it.cur
		n := s.nodes[cur] // copy: the arena may grow during expansion
		pos := int(n.depth)
		for it.aNext < it.aEnd {
			if it.halt.stop() {
				it.done = true
				return false
			}
			ai := it.aNext
			it.aNext++
			ei, toI := c.adjEdge[ai], c.adjTo[ai]
			// Final-depth fast path: see the DFS counterpart.
			if it.spec.MaxLen > 0 && pos+1 == it.spec.MaxLen &&
				it.targetIdx != noTarget && toI != it.targetIdx {
				continue
			}
			seen := s.visited[toI] == s.epoch
			if it.spec.Policy == VisitPerPath {
				seen = s.chainContains(cur, toI)
			}
			if seen {
				if it.spec.AllowCycle && toI == it.startIdx && pos+1 >= 2 &&
					it.spec.lenOK(pos+1) && csrTargetOK(it.targetIdx, toI) &&
					csrOkEdge(c, &it.spec, pos, ei, n.v, toI) {
					if it.spec.Prune != nil {
						s.chainIdx(cur, ei, toI)
						if !it.spec.Prune(c.fillPath(&s.scratch, s.pathV, s.pathE, 0)) {
							continue
						}
					}
					it.emitNode, it.closeEdge, it.closeVert = cur, ei, toI
					return true
				}
				continue
			}
			if !csrOkEdge(c, &it.spec, pos, ei, n.v, toI) {
				continue
			}
			if it.spec.FilterVertex != nil && !it.spec.FilterVertex(pos+1, c.verts[toI]) {
				continue
			}
			// Prune consults the refilled scratch path before the candidate
			// node exists, so a rejected expansion allocates nothing.
			if it.spec.Prune != nil {
				s.chainIdx(cur, ei, toI)
				if !it.spec.Prune(c.fillPath(&s.scratch, s.pathV, s.pathE, 0)) {
					continue
				}
			}
			np := int32(len(s.nodes))
			s.nodes = append(s.nodes, csrNode{parent: cur, edge: ei, v: toI, depth: n.depth + 1})
			if it.spec.Policy == VisitGlobal {
				s.visited[toI] = s.epoch
			}
			s.queue = append(s.queue, np)
			if it.spec.lenOK(pos+1) && csrTargetOK(it.targetIdx, toI) {
				it.emitNode, it.closeEdge = np, -1
				return true
			}
		}
		it.cur = -1
	}
	it.done = true
	return false
}

func (it *csrBFSIter) Step() bool { return it.step() }

func (it *csrBFSIter) Next() *Path {
	if !it.step() {
		return nil
	}
	s := it.s
	s.chainIdx(it.emitNode, it.closeEdge, it.closeVert)
	return it.c.buildPath(s.pathV, s.pathE, 0)
}

func (it *csrBFSIter) Release() {
	if it.released {
		return
	}
	it.released, it.done = true, true
	s := it.s
	it.s = nil
	it.c.pool.Put(s)
}

// ---------------------------------------------------------------- SPScan

type csrSPIter struct {
	c         *CSR
	spec      Spec
	s         *csrScratch
	weight    WeightFunc
	k         int32
	startIdx  int32
	targetIdx int32
	seq       int64
	emitNode  int32
	err       error
	done      bool
	released  bool
	halt      stopper
}

// NewCSRShortest creates a lazy shortest-path traversal over the snapshot
// (SPScan); semantics match NewShortest, including the per-vertex settle
// cap k and the negative-weight error surfaced through Err.
func NewCSRShortest(c *CSR, spec Spec, weight WeightFunc, k int) *csrSPIter {
	if k < 1 {
		k = 1
	}
	s := c.getScratch()
	it := &s.spi
	*it = csrSPIter{c: c, spec: spec, s: s, weight: weight, k: int32(k),
		halt: stopper{done: spec.Done}}
	it.startIdx = c.indexOfVertex(spec.Start)
	it.targetIdx = c.targetIndex(spec.Target)
	s.sp = s.sp[:0]
	s.heap = s.heap[:0]
	if it.startIdx < 0 || !spec.admitStart() {
		it.done = true
		return it
	}
	s.sp = append(s.sp, csrSPNode{parent: -1, edge: -1, v: it.startIdx})
	it.seq++
	s.heap = heapPush(s.heap, csrHeapItem{seq: it.seq, node: 0})
	return it
}

// Err returns the first traversal error (e.g. a negative edge weight).
// It must be read before Release.
func (it *csrSPIter) Err() error { return it.err }

func (it *csrSPIter) step() bool {
	if it.released || it.done || it.err != nil {
		return false
	}
	s, c := it.s, it.c
	for it.err == nil && len(s.heap) > 0 {
		if it.halt.stop() {
			break
		}
		var top csrHeapItem
		top, s.heap = heapPop(s.heap)
		ni := top.node
		n := s.sp[ni] // copy: the arena may grow during expansion
		end := n.v
		if s.settled(end) >= it.k {
			continue
		}
		s.settleInc(end)
		// Expand before deciding whether to emit (laziness under LIMIT),
		// exactly like the pointer kernel.
		if it.spec.MaxLen <= 0 || int(n.depth) < it.spec.MaxLen {
			pos := int(n.depth)
			for ai := c.adjOff[end]; ai < c.adjOff[end+1]; ai++ {
				ei, toI := c.adjEdge[ai], c.adjTo[ai]
				if s.spChainContains(ni, toI) {
					continue // simple paths only
				}
				if s.settled(toI) >= it.k {
					continue
				}
				if !csrOkEdge(c, &it.spec, pos, ei, end, toI) {
					continue
				}
				if it.spec.FilterVertex != nil && !it.spec.FilterVertex(pos+1, c.verts[toI]) {
					continue
				}
				w, ok := it.weight(pos, c.edges[ei], c.verts[end], c.verts[toI])
				if !ok {
					continue
				}
				if w < 0 {
					it.err = fmt.Errorf("graph %s: negative weight %g on edge %d; SPScan requires non-negative weights",
						c.g.Name(), w, c.edges[ei].ID)
					break
				}
				if it.spec.Prune != nil {
					s.spChainIdx(ni, ei, toI)
					if !it.spec.Prune(c.fillPath(&s.scratch, s.pathV, s.pathE, n.cost+w)) {
						continue
					}
				}
				np := int32(len(s.sp))
				s.sp = append(s.sp, csrSPNode{parent: ni, edge: ei, v: toI,
					depth: n.depth + 1, cost: n.cost + w})
				it.seq++
				s.heap = heapPush(s.heap, csrHeapItem{cost: n.cost + w, seq: it.seq, node: np})
			}
		}
		if it.err != nil {
			return false
		}
		if it.spec.lenOK(int(n.depth)) && csrTargetOK(it.targetIdx, end) {
			it.emitNode = ni
			return true
		}
	}
	it.done = true
	return false
}

func (it *csrSPIter) Step() bool { return it.step() }

func (it *csrSPIter) Next() *Path {
	if !it.step() {
		return nil
	}
	s := it.s
	s.spChainIdx(it.emitNode, -1, -1)
	return it.c.buildPath(s.pathV, s.pathE, s.sp[it.emitNode].cost)
}

func (it *csrSPIter) Release() {
	if it.released {
		return
	}
	it.released, it.done = true, true
	s := it.s
	it.s = nil
	it.c.pool.Put(s)
}

// CSRReachable reports whether target is reachable from start within
// maxLen edges over the snapshot — the index-form twin of Reachable.
func CSRReachable(c *CSR, start, target *Vertex, maxLen int) bool {
	if start == nil || target == nil {
		return false
	}
	if start == target {
		return true
	}
	it := NewCSRBFS(c, Spec{Start: start, Target: target, MinLen: 1, MaxLen: maxLen})
	ok := it.Step()
	it.Release()
	return ok
}
