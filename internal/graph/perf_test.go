package graph

import (
	"fmt"
	"testing"
)

// star builds a directed star: hub vertex 0 with leaves 1..n, edge i goes
// 0 -> i with edge id i.
func star(t testing.TB, n int) *Graph {
	t.Helper()
	g := New("star", true)
	if _, err := g.AddVertex(0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if _, err := g.AddVertex(int64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := g.AddEdge(int64(i), 0, int64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestHighDegreeDelete covers the swap-and-truncate adjacency removal: a
// hub vertex with tens of thousands of incident edges must delete edge by
// edge (and then wholesale) without the old O(degree²) rescan, and the
// maintained position indexes must stay consistent through the swaps.
func TestHighDegreeDelete(t *testing.T) {
	const n = 20000
	g := star(t, n)
	hub := g.Vertex(0)
	if len(hub.Out) != n {
		t.Fatalf("hub out-degree = %d, want %d", len(hub.Out), n)
	}

	// Remove every third edge individually; each removal swaps the tail
	// into the hole, so position indexes must be repaired as we go.
	removed := map[int64]bool{}
	for id := int64(3); id <= n; id += 3 {
		if !g.RemoveEdge(id) {
			t.Fatalf("RemoveEdge(%d) = false", id)
		}
		removed[id] = true
	}
	if got := len(hub.Out); got != n-len(removed) {
		t.Fatalf("hub out-degree after deletes = %d, want %d", got, n-len(removed))
	}
	// Position indexes must agree with list placement exactly.
	for i, e := range hub.Out {
		if int(e.outPos) != i {
			t.Fatalf("edge %d: outPos = %d but placed at %d", e.ID, e.outPos, i)
		}
		if removed[e.ID] {
			t.Fatalf("removed edge %d still on adjacency", e.ID)
		}
	}
	for _, e := range hub.Out {
		leaf := e.To
		if len(leaf.In) != 1 || leaf.In[0] != e || e.inPos != 0 {
			t.Fatalf("leaf %d in-list inconsistent", leaf.ID)
		}
	}

	// Deleting the hub cascades the rest, one O(1) removal per edge.
	cascaded, ok := g.RemoveVertex(0)
	if !ok {
		t.Fatal("RemoveVertex(0) = false")
	}
	if len(cascaded) != n-len(removed) {
		t.Fatalf("cascaded %d edges, want %d", len(cascaded), n-len(removed))
	}
	if g.NumEdges() != 0 || g.NumVertices() != n {
		t.Fatalf("after hub delete: %d edges, %d vertices", g.NumEdges(), g.NumVertices())
	}
}

// TestSelfLoopRemoval exercises the independent out/in positions a
// self-loop occupies on the same vertex's two lists.
func TestSelfLoopRemoval(t *testing.T) {
	g := New("loops", true)
	for i := int64(0); i < 3; i++ {
		if _, err := g.AddVertex(i, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge := func(id, from, to int64) {
		t.Helper()
		if _, err := g.AddEdge(id, from, to, uint64(id)); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge(1, 0, 1) // occupies 0.Out[0]
	mustEdge(2, 0, 0) // self-loop: 0.Out[1] and 0.In[0]
	mustEdge(3, 2, 0) // 0.In[1]
	if !g.RemoveEdge(2) {
		t.Fatal("RemoveEdge(2) = false")
	}
	v0 := g.Vertex(0)
	if len(v0.Out) != 1 || v0.Out[0].ID != 1 {
		t.Fatalf("v0.Out = %v", ids(v0.Out))
	}
	if len(v0.In) != 1 || v0.In[0].ID != 3 {
		t.Fatalf("v0.In = %v", ids(v0.In))
	}
	for i, e := range v0.Out {
		if int(e.outPos) != i {
			t.Fatalf("outPos broken for edge %d", e.ID)
		}
	}
	for i, e := range v0.In {
		if int(e.inPos) != i {
			t.Fatalf("inPos broken for edge %d", e.ID)
		}
	}
}

func ids(es []*Edge) []int64 {
	out := make([]int64, len(es))
	for i, e := range es {
		out[i] = e.ID
	}
	return out
}

// TestIterationOrderCache proves Vertices/Edges serve ascending-id order
// through every kind of topology mutation (the cache must drop whenever
// the order could change).
func TestIterationOrderCache(t *testing.T) {
	g := New("cache", true)
	for _, id := range []int64{5, 1, 9} {
		if _, err := g.AddVertex(id, uint64(id)); err != nil {
			t.Fatal(err)
		}
	}
	check := func(wantV, wantE []int64) {
		t.Helper()
		var gotV []int64
		g.Vertices(func(v *Vertex) bool { gotV = append(gotV, v.ID); return true })
		if fmt.Sprint(gotV) != fmt.Sprint(wantV) {
			t.Fatalf("vertex order = %v, want %v", gotV, wantV)
		}
		var gotE []int64
		g.Edges(func(e *Edge) bool { gotE = append(gotE, e.ID); return true })
		if fmt.Sprint(gotE) != fmt.Sprint(wantE) {
			t.Fatalf("edge order = %v, want %v", gotE, wantE)
		}
	}
	check([]int64{1, 5, 9}, nil)
	check([]int64{1, 5, 9}, nil) // cached second pass

	if _, err := g.AddVertex(3, 3); err != nil {
		t.Fatal(err)
	}
	check([]int64{1, 3, 5, 9}, nil)

	if _, err := g.AddEdge(7, 5, 1, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(2, 1, 3, 2); err != nil {
		t.Fatal(err)
	}
	check([]int64{1, 3, 5, 9}, []int64{2, 7})

	if err := g.RenameVertex(9, 0); err != nil {
		t.Fatal(err)
	}
	check([]int64{0, 1, 3, 5}, []int64{2, 7})

	if err := g.RenameEdge(2, 8); err != nil {
		t.Fatal(err)
	}
	check([]int64{0, 1, 3, 5}, []int64{7, 8})

	if !g.RemoveEdge(7) {
		t.Fatal("RemoveEdge(7) = false")
	}
	check([]int64{0, 1, 3, 5}, []int64{8})

	if _, ok := g.RemoveVertex(1); !ok {
		t.Fatal("RemoveVertex(1) = false")
	}
	check([]int64{0, 3, 5}, nil)
}

// TestVersionAdvances pins the topology version counter that derived read
// structures (order caches, CSR snapshots) key their freshness on.
func TestVersionAdvances(t *testing.T) {
	g := New("ver", true)
	last := g.Version()
	bump := func(what string) {
		t.Helper()
		if v := g.Version(); v <= last {
			t.Fatalf("%s did not advance version (still %d)", what, v)
		}
		last = g.Version()
	}
	g.AddVertex(1, 1)
	bump("AddVertex")
	g.AddVertex(2, 2)
	bump("AddVertex")
	g.AddEdge(1, 1, 2, 1)
	bump("AddEdge")
	g.RenameVertex(2, 3)
	bump("RenameVertex")
	g.RenameEdge(1, 4)
	bump("RenameEdge")
	g.RemoveEdge(4)
	bump("RemoveEdge")
	g.RemoveVertex(3)
	bump("RemoveVertex")
}

// TestBFSPruneAllocs is the allocs-per-op guard for the bfsIter.Prune fix:
// rejecting every candidate expansion over a 10k-leaf hub must not
// materialize 10k paths. The whole traversal is allowed a small constant
// number of allocations (iterator, queue, visited map, adjacency scratch).
func TestBFSPruneAllocs(t *testing.T) {
	const n = 10000
	g := star(t, n)
	hub := g.Vertex(0)
	spec := Spec{
		Start:  hub,
		MinLen: 1,
		Prune:  func(p *Path) bool { return false },
	}
	// Warm-up run so lazily sized structures don't count.
	if p := NewBFS(g, spec).Next(); p != nil {
		t.Fatalf("prune-everything BFS emitted %v", p)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if p := NewBFS(g, spec).Next(); p != nil {
			t.Fatalf("prune-everything BFS emitted %v", p)
		}
	})
	// Before the scratch-path fix this was ~3 allocations per leaf
	// (30k+); the fixed kernel allocates only per-traversal state.
	if allocs > 50 {
		t.Fatalf("BFS with rejecting Prune allocated %.0f objects; candidate materialization is back", allocs)
	}
}

// TestShortestPruneAllocs is the same guard for the SPScan kernel.
func TestShortestPruneAllocs(t *testing.T) {
	const n = 10000
	g := star(t, n)
	hub := g.Vertex(0)
	spec := Spec{
		Start:  hub,
		MinLen: 1,
		Prune:  func(p *Path) bool { return false },
	}
	run := func() {
		it := NewShortest(g, spec, UnitWeight, 1)
		if p := it.Next(); p != nil {
			t.Fatalf("prune-everything SPScan emitted %v", p)
		}
	}
	run()
	allocs := testing.AllocsPerRun(5, run)
	if allocs > 50 {
		t.Fatalf("SPScan with rejecting Prune allocated %.0f objects; candidate materialization is back", allocs)
	}
}

// BenchmarkRemoveHighDegreeVertex measures hub deletion (the formerly
// quadratic case).
func BenchmarkRemoveHighDegreeVertex(b *testing.B) {
	const n = 10000
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := star(b, n)
		b.StartTimer()
		g.RemoveVertex(0)
	}
}
