package graph

import (
	"strconv"
	"strings"
)

// Path is a traversal result: an ordered list of edges plus the vertex
// sequence in traversal order (§4: "GRFusion models a path as an ordered
// list of edges, where each edge has a start and end vertexes").
//
// For undirected graphs an edge may be traversed against its stored
// From→To orientation, so the authoritative start/end vertex of step i is
// Verts[i] / Verts[i+1], not Edges[i].From / Edges[i].To.
type Path struct {
	// Edges holds the path's edges in traversal order; len >= 0.
	Edges []*Edge
	// Verts holds the visited vertexes in traversal order;
	// len(Verts) == len(Edges)+1 always (a zero-length path is one vertex).
	Verts []*Vertex
	// Cost is the accumulated weight under SPScan's weight attribute, or 0.
	Cost float64
}

// Len returns the path length in edges (the PS.Length property).
func (p *Path) Len() int { return len(p.Edges) }

// Start returns the path's start vertex (PS.StartVertex).
func (p *Path) Start() *Vertex { return p.Verts[0] }

// End returns the path's end vertex (PS.EndVertex).
func (p *Path) End() *Vertex { return p.Verts[len(p.Verts)-1] }

// StepStart returns the start vertex of edge i in traversal order.
func (p *Path) StepStart(i int) *Vertex { return p.Verts[i] }

// StepEnd returns the end vertex of edge i in traversal order.
func (p *Path) StepEnd(i int) *Vertex { return p.Verts[i+1] }

// String renders the PS.PathString property: vertex and edge identifiers in
// traversal order, e.g. "1-[7]->2-[9]->5".
func (p *Path) String() string {
	var sb strings.Builder
	sb.WriteString(strconv.FormatInt(p.Verts[0].ID, 10))
	for i, e := range p.Edges {
		sb.WriteString("-[")
		sb.WriteString(strconv.FormatInt(e.ID, 10))
		sb.WriteString("]->")
		sb.WriteString(strconv.FormatInt(p.Verts[i+1].ID, 10))
	}
	return sb.String()
}

// Clone returns a deep copy of the path's slices (the referenced vertexes
// and edges are shared with the topology, as always).
func (p *Path) Clone() *Path {
	return &Path{
		Edges: append([]*Edge(nil), p.Edges...),
		Verts: append([]*Vertex(nil), p.Verts...),
		Cost:  p.Cost,
	}
}

// contains reports whether v already appears on the path.
func (p *Path) contains(v *Vertex) bool {
	for _, x := range p.Verts {
		if x == v {
			return true
		}
	}
	return false
}

// pnode is a node of a traversal tree: partial paths during BFS and
// shortest-path search share prefixes through parent pointers instead of
// copying slices, so expanding a vertex costs O(1) memory. A full Path is
// materialized only when a result is emitted.
type pnode struct {
	parent *pnode
	edge   *Edge // nil at the root
	v      *Vertex
	depth  int
	cost   float64
}

func (n *pnode) contains(v *Vertex) bool {
	for x := n; x != nil; x = x.parent {
		if x.v == v {
			return true
		}
	}
	return false
}

// materialize builds a fresh concrete Path for emission, optionally
// appending one extra closing step.
func (n *pnode) materialize(extraEdge *Edge, extraVert *Vertex) *Path {
	return n.materializeInto(&Path{}, extraEdge, extraVert)
}

// materializeInto fills p with the node's path, reusing p's slice capacity
// so a per-iterator scratch path serves every Prune candidate without
// allocating (the dfsIter shared-working-path trick, ported to the
// traversal-tree kernels). The result aliases p and is only valid until
// the next call with the same p.
func (n *pnode) materializeInto(p *Path, extraEdge *Edge, extraVert *Vertex) *Path {
	length := n.depth
	if extraEdge != nil {
		length++
	}
	if cap(p.Edges) < length {
		p.Edges = make([]*Edge, length)
	} else {
		p.Edges = p.Edges[:length]
	}
	if cap(p.Verts) < length+1 {
		p.Verts = make([]*Vertex, length+1)
	} else {
		p.Verts = p.Verts[:length+1]
	}
	p.Cost = n.cost
	i := length
	if extraEdge != nil {
		p.Verts[i] = extraVert
		i--
		p.Edges[i] = extraEdge
	}
	for x := n; x != nil; x = x.parent {
		p.Verts[i] = x.v
		if x.edge != nil {
			p.Edges[i-1] = x.edge
		}
		i--
	}
	return p
}
