package graph

import (
	"testing"
)

// chain builds 1 -> 2 -> ... -> n with edge i: i -> i+1 (edge id = i).
func chain(n int, directed bool) *Graph {
	g := New("chain", directed)
	for i := 1; i <= n; i++ {
		if _, err := g.AddVertex(int64(i), uint64(i)); err != nil {
			panic(err)
		}
	}
	for i := 1; i < n; i++ {
		if _, err := g.AddEdge(int64(i), int64(i), int64(i+1), uint64(i)); err != nil {
			panic(err)
		}
	}
	return g
}

// triangleGraph builds the directed cycle 1 -> 2 -> 3 -> 1.
func triangleGraph() *Graph {
	g := New("tri", true)
	for i := 1; i <= 3; i++ {
		g.AddVertex(int64(i), uint64(i))
	}
	g.AddEdge(1, 1, 2, 1)
	g.AddEdge(2, 2, 3, 2)
	g.AddEdge(3, 3, 1, 3)
	return g
}

func TestAddVertexEdgeBasics(t *testing.T) {
	g := New("g", true)
	v1, err := g.AddVertex(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddVertex(1, 101); err == nil {
		t.Error("duplicate vertex accepted")
	}
	if _, err := g.AddEdge(1, 1, 2, 200); err == nil {
		t.Error("edge to missing vertex accepted")
	}
	v2, _ := g.AddVertex(2, 102)
	e, err := g.AddEdge(1, 1, 2, 200)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(1, 2, 1, 201); err == nil {
		t.Error("duplicate edge id accepted")
	}
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Errorf("counts: %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if g.Vertex(1) != v1 || g.Edge(1) != e {
		t.Error("lookup mismatch")
	}
	if e.From != v1 || e.To != v2 {
		t.Error("edge endpoints wrong")
	}
	if e.Other(v1) != v2 || e.Other(v2) != v1 {
		t.Error("Other wrong")
	}
	if v1.Tuple != 100 || e.Tuple != 200 {
		t.Error("tuple pointers lost")
	}
}

func TestFanInFanOut(t *testing.T) {
	g := triangleGraph()
	v := g.Vertex(1)
	if g.FanOut(v) != 1 || g.FanIn(v) != 1 {
		t.Errorf("directed fan: out=%d in=%d", g.FanOut(v), g.FanIn(v))
	}
	u := New("u", false)
	u.AddVertex(1, 1)
	u.AddVertex(2, 2)
	u.AddVertex(3, 3)
	u.AddEdge(1, 1, 2, 1)
	u.AddEdge(2, 3, 1, 2)
	w := u.Vertex(1)
	if u.FanOut(w) != 2 || u.FanIn(w) != 2 {
		t.Errorf("undirected fan must be degree: out=%d in=%d", u.FanOut(w), u.FanIn(w))
	}
}

func TestAvgFanOut(t *testing.T) {
	g := triangleGraph()
	if got := g.AvgFanOut(); got != 1 {
		t.Errorf("directed avg fan-out = %g", got)
	}
	u := chain(3, false)
	if got := u.AvgFanOut(); got != 4.0/3.0 {
		t.Errorf("undirected avg fan-out = %g", got)
	}
	if New("e", true).AvgFanOut() != 0 {
		t.Error("empty graph avg fan-out must be 0")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := triangleGraph()
	if !g.RemoveEdge(2) {
		t.Fatal("remove failed")
	}
	if g.RemoveEdge(2) {
		t.Error("double remove succeeded")
	}
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d", g.NumEdges())
	}
	v2 := g.Vertex(2)
	if len(v2.Out) != 0 {
		t.Error("adjacency not cleaned")
	}
}

func TestRemoveVertexCascades(t *testing.T) {
	g := triangleGraph()
	cascaded, ok := g.RemoveVertex(2)
	if !ok {
		t.Fatal("remove failed")
	}
	if len(cascaded) != 2 || cascaded[0] != 1 || cascaded[1] != 2 {
		t.Errorf("cascaded = %v", cascaded)
	}
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Errorf("after cascade: %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if _, ok := g.RemoveVertex(2); ok {
		t.Error("double remove succeeded")
	}
}

func TestRemoveVertexSelfLoop(t *testing.T) {
	g := New("loop", true)
	g.AddVertex(1, 1)
	g.AddEdge(7, 1, 1, 7)
	cascaded, ok := g.RemoveVertex(1)
	if !ok || len(cascaded) != 1 || cascaded[0] != 7 {
		t.Errorf("self-loop cascade = %v, %v", cascaded, ok)
	}
	if g.NumEdges() != 0 {
		t.Error("self-loop survived")
	}
}

func TestRenameVertex(t *testing.T) {
	g := triangleGraph()
	if err := g.RenameVertex(1, 10); err != nil {
		t.Fatal(err)
	}
	if g.Vertex(1) != nil || g.Vertex(10) == nil || g.Vertex(10).ID != 10 {
		t.Error("rename broken")
	}
	// Adjacency intact.
	if g.Vertex(10).Out[0].To.ID != 2 {
		t.Error("adjacency broken by rename")
	}
	if err := g.RenameVertex(99, 100); err == nil {
		t.Error("rename of missing vertex accepted")
	}
	if err := g.RenameVertex(10, 2); err == nil {
		t.Error("rename to duplicate accepted")
	}
	if err := g.RenameVertex(10, 10); err != nil {
		t.Error("no-op rename must succeed")
	}
}

func TestRenameEdge(t *testing.T) {
	g := triangleGraph()
	if err := g.RenameEdge(1, 11); err != nil {
		t.Fatal(err)
	}
	if g.Edge(1) != nil || g.Edge(11) == nil {
		t.Error("rename broken")
	}
	if err := g.RenameEdge(99, 1); err == nil {
		t.Error("rename missing edge accepted")
	}
	if err := g.RenameEdge(11, 2); err == nil {
		t.Error("rename to duplicate accepted")
	}
}

func TestVerticesEdgesDeterministicOrder(t *testing.T) {
	g := New("g", true)
	for _, id := range []int64{5, 3, 9, 1} {
		g.AddVertex(id, uint64(id))
	}
	var ids []int64
	g.Vertices(func(v *Vertex) bool { ids = append(ids, v.ID); return true })
	want := []int64{1, 3, 5, 9}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("vertex order %v", ids)
		}
	}
	// Early stop.
	n := 0
	g.Vertices(func(*Vertex) bool { n++; return false })
	if n != 1 {
		t.Error("early stop ignored")
	}
}

func TestApproxBytesScales(t *testing.T) {
	small := chain(10, true).ApproxBytes()
	big := chain(1000, true).ApproxBytes()
	if big <= small {
		t.Errorf("topology bytes: %d !> %d", big, small)
	}
}
