package graph

// This file implements the whole-graph analytics kernels behind the
// GV.PAGERANK / GV.CONNECTED_COMPONENTS / GV.LABEL_PROPAGATION /
// GV.DEGREE_CENTRALITY table-valued functions: vertex-centric algorithms
// over the CSR snapshot's flat arrays, the workload GraphGen runs
// in-engine so results join back against relational attributes.
//
// Parallelism model. Every kernel splits the vertex range into fixed
// 1024-vertex chunks and hands chunks to a worker pool. Determinism is a
// hard contract (the oracle diffs results across worker counts and
// layouts), so the chunking never depends on the worker count and the
// kernels obey two rules:
//
//   - a parallel phase writes only per-vertex state owned by the chunk
//     being processed (or state claimed through a CAS whose winner writes
//     a value independent of the race), and integer per-chunk partials;
//   - every floating-point reduction — PageRank's dangling mass and
//     convergence delta — runs sequentially on the coordinator in
//     ascending vertex order, so the summation order is fixed.
//
// Under those rules the parallel kernels are bit-identical to their
// sequential selves at any worker count, and also to the Ref* pointer-graph
// references below, because the CSR adjacency arrays mirror the pointer
// lists' order exactly (see csr.go's determinism contract).
//
// Cancellation threads through like every other kernel: the done channel
// is polled between chunks and levels, and a halted run returns ErrStopped
// for the executor to map to its typed cause.

import (
	"math/bits"
	"slices"
	"sync"
	"sync/atomic"
)

// analyticsChunk is the fixed chunk size of the analytics worker pool. It
// is independent of the worker count on purpose: the chunk grid, not the
// workers, defines the units of owned state.
const analyticsChunk = 1024

// Direction-switching thresholds of the direction-optimizing BFS, the GAP
// benchmark's heuristic: switch top-down → bottom-up when the frontier's
// out-edges exceed 1/alpha of the unexplored edges, and back when the
// frontier shrinks below 1/beta of the vertices.
const (
	dobfsAlpha = 14
	dobfsBeta  = 24
)

// ComponentsStats reports what a Components run actually did, surfaced by
// EXPLAIN ANALYZE.
type ComponentsStats struct {
	// Components is the number of weakly-connected components found.
	Components int
	// Levels counts BFS frontier expansions across all components.
	Levels int
	// TopDown and BottomUp split Levels by traversal direction.
	TopDown, BottomUp int
}

// analyticsScratch is the pooled per-run state of the analytics kernels:
// rank/label double buffers, the frontier and visited bitmaps, per-chunk
// partial counters, and per-worker neighbor-label buffers. One scratch
// serves one run at a time; Release returns it to the snapshot's pool, so
// steady-state analytics allocate nothing.
type analyticsScratch struct {
	rank, rank2 []float64
	lbl, lbl2   []int64

	visited, cur, next []uint32 // bitmaps, one bit per vertex

	cnt1, cnt2 []int64 // per-chunk integer partials

	nbufs [][]int64 // per-worker label multiset buffers

	// Preallocated chunk runners: runChunks takes an interface instead of
	// a closure so a steady-state run performs zero allocations (a closure
	// literal plus its captures would escape on every call).
	pr prRun
	td wccTopDown
	bu wccBottomUp
	lp lpRun
}

// Analytics is a handle on one pooled analytics run over a CSR snapshot.
// The slices returned by its kernels live in the pooled scratch: they stay
// valid until Release, after which the pool may hand the memory to the
// next run.
type Analytics struct {
	c *CSR
	s *analyticsScratch
}

// NewAnalytics takes an analytics scratch from the snapshot's pool. The
// returned handle is a value so steady-state runs allocate nothing.
func (c *CSR) NewAnalytics() Analytics {
	return Analytics{c: c, s: c.apool.Get().(*analyticsScratch)}
}

// Release returns the scratch to the pool, invalidating every slice the
// handle's kernels returned.
func (a Analytics) Release() { a.c.apool.Put(a.s) }

// VertexID maps a dense vertex index to the vertex identifier, letting the
// executor turn kernel outputs (indexed by dense position) into rows.
func (c *CSR) VertexID(i int) int64 { return c.vids[i] }

// stoppedCh reports whether the cancellation signal has fired.
func stoppedCh(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// chunkRunner is one parallel phase of a kernel. runChunk receives the
// worker slot (for per-worker buffers) and the chunk bounds; which worker
// runs which chunk is unspecified, so implementations must only write
// state the chunk owns (plus CAS-claimed state and per-chunk partials).
// It is an interface, not a func value, so kernels can keep their runners
// preallocated in the scratch and stay allocation-free.
type chunkRunner interface{ runChunk(worker, lo, hi int) }

// runChunks applies fn to every 1024-vertex chunk of [0, n). With one
// worker the chunks run inline on the caller with no goroutines and no
// allocation — the zero-alloc configuration the bench gate measures.
func runChunks(done <-chan struct{}, workers, n int, fn chunkRunner) error {
	if n == 0 {
		return nil
	}
	nchunks := (n + analyticsChunk - 1) / analyticsChunk
	if workers > nchunks {
		workers = nchunks
	}
	if workers <= 1 {
		for ci := 0; ci < nchunks; ci++ {
			if stoppedCh(done) {
				return ErrStopped
			}
			lo := ci * analyticsChunk
			fn.runChunk(0, lo, min(lo+analyticsChunk, n))
		}
		return nil
	}
	var next atomic.Int64
	var halted atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				if stoppedCh(done) {
					halted.Store(true)
					return
				}
				ci := int(next.Add(1)) - 1
				if ci >= nchunks {
					return
				}
				lo := ci * analyticsChunk
				fn.runChunk(worker, lo, min(lo+analyticsChunk, n))
			}
		}(w)
	}
	wg.Wait()
	if halted.Load() {
		return ErrStopped
	}
	return nil
}

// numChunks returns the chunk count for n vertexes.
func numChunks(n int) int { return (n + analyticsChunk - 1) / analyticsChunk }

// sizeF64 / sizeI64 / sizeU32 resize scratch slices, reusing capacity.
func sizeF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func sizeI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func sizeU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func zeroI64(s []int64) {
	for i := range s {
		s[i] = 0
	}
}

func zeroU32(s []uint32) {
	for i := range s {
		s[i] = 0
	}
}

// Bitmap primitives. Chunks are 1024 vertexes = 32 whole words, so a chunk
// owns its bitmap words outright and owned phases may use the plain
// variants; cross-chunk claims go through the CAS variants.
func testBit(words []uint32, i int32) bool {
	return words[i>>5]&(uint32(1)<<(uint(i)&31)) != 0
}

func setBit(words []uint32, i int32) {
	words[i>>5] |= uint32(1) << (uint(i) & 31)
}

// claimBit atomically test-and-sets bit i, reporting whether this caller
// won the claim.
func claimBit(words []uint32, i int32) bool {
	w := &words[i>>5]
	mask := uint32(1) << (uint(i) & 31)
	for {
		old := atomic.LoadUint32(w)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint32(w, old, old|mask) {
			return true
		}
	}
}

// orBit atomically sets bit i.
func orBit(words []uint32, i int32) {
	w := &words[i>>5]
	mask := uint32(1) << (uint(i) & 31)
	for {
		old := atomic.LoadUint32(w)
		if old&mask != 0 || atomic.CompareAndSwapUint32(w, old, old|mask) {
			return
		}
	}
}

// prDegree returns the degree PageRank divides a vertex's rank by: the
// out-degree for directed graphs, the traversal-view degree (every
// incident edge, self-loops once) for undirected ones.
func (c *CSR) prDegree(v int32) int32 {
	if c.directed {
		return c.outOff[v+1] - c.outOff[v]
	}
	return c.adjOff[v+1] - c.adjOff[v]
}

// prRun is the parallel pull phase of one PageRank iteration.
type prRun struct {
	c           *CSR
	rank, rank2 []float64
	base        float64
	damping     float64
}

func (r *prRun) runChunk(_, lo, hi int) {
	c := r.c
	rank, rank2 := r.rank, r.rank2
	if c.directed {
		for v := int32(lo); v < int32(hi); v++ {
			sum := 0.0
			for i := c.inOff[v]; i < c.inOff[v+1]; i++ {
				u := c.inAdj[i]
				sum += rank[u] / float64(c.outOff[u+1]-c.outOff[u])
			}
			rank2[v] = r.base + r.damping*sum
		}
	} else {
		for v := int32(lo); v < int32(hi); v++ {
			sum := 0.0
			for i := c.adjOff[v]; i < c.adjOff[v+1]; i++ {
				u := c.adjTo[i]
				sum += rank[u] / float64(c.adjOff[u+1]-c.adjOff[u])
			}
			rank2[v] = r.base + r.damping*sum
		}
	}
}

// PageRank runs synchronous pull-based PageRank with dangling-mass
// redistribution: maxIters iterations, stopping early when the L1 delta
// between iterations drops to eps or below (eps <= 0 disables the early
// stop). It returns the per-vertex ranks (indexed by dense vertex index,
// valid until Release) and the number of iterations actually run.
func (a Analytics) PageRank(done <-chan struct{}, workers int, damping float64, maxIters int, eps float64) ([]float64, int, error) {
	c, s := a.c, a.s
	nv := len(c.verts)
	if nv == 0 {
		return nil, 0, nil
	}
	s.rank = sizeF64(s.rank, nv)
	s.rank2 = sizeF64(s.rank2, nv)
	rank, rank2 := s.rank, s.rank2
	init := 1 / float64(nv)
	for i := range rank {
		rank[i] = init
	}
	n := float64(nv)
	iters := 0
	for it := 0; it < maxIters; it++ {
		if stoppedCh(done) {
			return nil, iters, ErrStopped
		}
		// Sequential pre-pass, ascending: the dangling mass is a
		// floating-point reduction, so its summation order must not depend
		// on chunking or workers.
		dangling := 0.0
		for v := int32(0); v < int32(nv); v++ {
			if c.prDegree(v) == 0 {
				dangling += rank[v]
			}
		}
		s.pr = prRun{c: c, rank: rank, rank2: rank2,
			base: (1-damping)/n + damping*dangling/n, damping: damping}
		err := runChunks(done, workers, nv, &s.pr)
		if err != nil {
			return nil, iters, err
		}
		// Sequential convergence delta, ascending, same reasoning.
		delta := 0.0
		for v := 0; v < nv; v++ {
			d := rank2[v] - rank[v]
			if d < 0 {
				d = -d
			}
			delta += d
		}
		rank, rank2 = rank2, rank
		iters = it + 1
		if eps > 0 && delta <= eps {
			break
		}
	}
	s.rank, s.rank2 = rank, rank2
	return rank, iters, nil
}

// wccDegree is the undirected degree Components uses for its direction
// heuristic: out + in, i.e. every incident edge arc.
func (c *CSR) wccDegree(v int32) int64 {
	return int64(c.outOff[v+1] - c.outOff[v] + c.inOff[v+1] - c.inOff[v])
}

// wccTopDown is a top-down BFS level: expand the frontier's out+in arcs,
// claiming unvisited endpoints by CAS. The claim winner writes the
// component label — the same value whoever wins — so the race never
// reaches the output.
type wccTopDown struct {
	c                  *CSR
	s                  *analyticsScratch
	cur, next, visited []uint32
	comp               []int64
	label              int64
}

func (r *wccTopDown) runChunk(_, lo, hi int) {
	c := r.c
	ci := lo / analyticsChunk
	var nV, nE int64
	for w := lo >> 5; w < (hi+31)>>5; w++ {
		bm := r.cur[w]
		for bm != 0 {
			v := int32(w<<5) + int32(bits.TrailingZeros32(bm))
			bm &= bm - 1
			for i := c.outOff[v]; i < c.outOff[v+1]; i++ {
				u := c.outAdj[i]
				if claimBit(r.visited, u) {
					r.comp[u] = r.label
					orBit(r.next, u)
					nV++
					nE += c.wccDegree(u)
				}
			}
			for i := c.inOff[v]; i < c.inOff[v+1]; i++ {
				u := c.inAdj[i]
				if claimBit(r.visited, u) {
					r.comp[u] = r.label
					orBit(r.next, u)
					nV++
					nE += c.wccDegree(u)
				}
			}
		}
	}
	r.s.cnt1[ci], r.s.cnt2[ci] = nV, nE
}

// wccBottomUp is a bottom-up BFS level: every unvisited vertex probes its
// own arcs for a frontier neighbor. All writes are chunk-owned (1024
// vertexes = 32 whole bitmap words), so no atomics.
type wccBottomUp struct {
	c                  *CSR
	s                  *analyticsScratch
	cur, next, visited []uint32
	comp               []int64
	label              int64
}

func (r *wccBottomUp) runChunk(_, lo, hi int) {
	c := r.c
	ci := lo / analyticsChunk
	var nV, nE int64
	for v := int32(lo); v < int32(hi); v++ {
		if testBit(r.visited, v) {
			continue
		}
		joined := false
		for i := c.outOff[v]; i < c.outOff[v+1] && !joined; i++ {
			joined = testBit(r.cur, c.outAdj[i])
		}
		for i := c.inOff[v]; i < c.inOff[v+1] && !joined; i++ {
			joined = testBit(r.cur, c.inAdj[i])
		}
		if joined {
			setBit(r.visited, v)
			setBit(r.next, v)
			r.comp[v] = r.label
			nV++
			nE += c.wccDegree(v)
		}
	}
	r.s.cnt1[ci], r.s.cnt2[ci] = nV, nE
}

// Components labels the weakly-connected components: every vertex gets the
// smallest vertex identifier in its component. Each component is explored
// by a parallel level-synchronous BFS over out+in adjacency that switches
// between top-down and bottom-up frontier expansion with the GAP
// heuristic. The labels slice is indexed by dense vertex index and valid
// until Release.
func (a Analytics) Components(done <-chan struct{}, workers int) ([]int64, ComponentsStats, error) {
	c, s := a.c, a.s
	nv := len(c.verts)
	var stats ComponentsStats
	if nv == 0 {
		return nil, stats, nil
	}
	s.lbl = sizeI64(s.lbl, nv)
	comp := s.lbl
	nwords := (nv + 31) / 32
	s.visited = sizeU32(s.visited, nwords)
	s.cur = sizeU32(s.cur, nwords)
	s.next = sizeU32(s.next, nwords)
	visited, cur, next := s.visited, s.cur, s.next
	zeroU32(visited)
	nchunks := numChunks(nv)
	s.cnt1 = sizeI64(s.cnt1, nchunks)
	s.cnt2 = sizeI64(s.cnt2, nchunks)

	// remaining counts the edge arcs incident to still-unvisited vertexes,
	// the denominator of the top-down → bottom-up switch.
	remaining := int64(c.outOff[nv]) + int64(c.inOff[nv])

	for r := int32(0); r < int32(nv); r++ {
		if testBit(visited, r) {
			continue
		}
		stats.Components++
		label := c.vids[r]
		setBit(visited, r)
		comp[r] = label
		remaining -= c.wccDegree(r)
		if c.wccDegree(r) == 0 {
			continue // isolated vertex: no BFS to run
		}
		zeroU32(cur)
		setBit(cur, r)
		frontV, frontE := int64(1), c.wccDegree(r)
		topDown := true
		for frontV > 0 {
			if stoppedCh(done) {
				return nil, stats, ErrStopped
			}
			// Direction heuristic: a frontier about to scan more edges
			// than 1/alpha of the unexplored arcs is cheaper bottom-up; a
			// frontier that shrank below 1/beta of the vertexes goes back
			// to top-down.
			if topDown && frontE > remaining/dobfsAlpha {
				topDown = false
			} else if !topDown && frontV < int64(nv)/dobfsBeta {
				topDown = true
			}
			stats.Levels++
			zeroU32(next)
			zeroI64(s.cnt1[:nchunks])
			zeroI64(s.cnt2[:nchunks])
			var err error
			if topDown {
				stats.TopDown++
				s.td = wccTopDown{c: c, s: s, cur: cur, next: next,
					visited: visited, comp: comp, label: label}
				err = runChunks(done, workers, nv, &s.td)
			} else {
				stats.BottomUp++
				s.bu = wccBottomUp{c: c, s: s, cur: cur, next: next,
					visited: visited, comp: comp, label: label}
				err = runChunks(done, workers, nv, &s.bu)
			}
			if err != nil {
				return nil, stats, err
			}
			frontV, frontE = 0, 0
			for ci := 0; ci < nchunks; ci++ {
				frontV += s.cnt1[ci]
				frontE += s.cnt2[ci]
			}
			remaining -= frontE
			cur, next = next, cur
		}
	}
	s.cur, s.next = cur, next
	return comp, stats, nil
}

// lpRun is the parallel phase of one label-propagation iteration.
type lpRun struct {
	c         *CSR
	s         *analyticsScratch
	lbl, lbl2 []int64
}

func (r *lpRun) runChunk(worker, lo, hi int) {
	c := r.c
	ci := lo / analyticsChunk
	buf := r.s.nbufs[worker]
	var changed int64
	for v := int32(lo); v < int32(hi); v++ {
		buf = buf[:0]
		for i := c.outOff[v]; i < c.outOff[v+1]; i++ {
			buf = append(buf, r.lbl[c.outAdj[i]])
		}
		for i := c.inOff[v]; i < c.inOff[v+1]; i++ {
			buf = append(buf, r.lbl[c.inAdj[i]])
		}
		nl := mostFrequentLabel(buf, r.lbl[v])
		r.lbl2[v] = nl
		if nl != r.lbl[v] {
			changed++
		}
	}
	r.s.nbufs[worker] = buf
	r.s.cnt1[ci] = changed
}

// LabelProp runs synchronous label propagation: labels start as vertex
// identifiers and every iteration each vertex adopts the most frequent
// label among its out+in neighbors (smallest label on ties), until a
// fixpoint or maxIters. Synchronous updates read the previous iteration's
// labels only, so the result is independent of evaluation order. The
// labels slice is indexed by dense vertex index and valid until Release.
func (a Analytics) LabelProp(done <-chan struct{}, workers, maxIters int) ([]int64, int, error) {
	c, s := a.c, a.s
	nv := len(c.verts)
	if nv == 0 {
		return nil, 0, nil
	}
	s.lbl = sizeI64(s.lbl, nv)
	s.lbl2 = sizeI64(s.lbl2, nv)
	lbl, lbl2 := s.lbl, s.lbl2
	copy(lbl, c.vids)
	nchunks := numChunks(nv)
	s.cnt1 = sizeI64(s.cnt1, nchunks)
	if workers < 1 {
		workers = 1
	}
	if len(s.nbufs) < workers {
		s.nbufs = append(s.nbufs, make([][]int64, workers-len(s.nbufs))...)
	}
	iters := 0
	for it := 0; it < maxIters; it++ {
		if stoppedCh(done) {
			return nil, iters, ErrStopped
		}
		s.lp = lpRun{c: c, s: s, lbl: lbl, lbl2: lbl2}
		err := runChunks(done, workers, nv, &s.lp)
		if err != nil {
			return nil, iters, err
		}
		lbl, lbl2 = lbl2, lbl
		iters = it + 1
		changed := int64(0)
		for ci := 0; ci < nchunks; ci++ {
			changed += s.cnt1[ci]
		}
		if changed == 0 {
			break
		}
	}
	s.lbl, s.lbl2 = lbl, lbl2
	return lbl, iters, nil
}

// mostFrequentLabel picks the most frequent value of buf (smallest value on
// ties) by sorting and scanning runs; own breaks a fully empty multiset.
// buf is scratch and comes back reordered.
func mostFrequentLabel(buf []int64, own int64) int64 {
	if len(buf) == 0 {
		return own
	}
	slices.Sort(buf)
	best, bestN := buf[0], 0
	run, runN := buf[0], 1
	for i := 1; i < len(buf); i++ {
		if buf[i] == run {
			runN++
			continue
		}
		if runN > bestN {
			best, bestN = run, runN
		}
		run, runN = buf[i], 1
	}
	if runN > bestN {
		best = run
	}
	return best
}

// Degrees fills the per-vertex degree columns of DEGREE_CENTRALITY with
// the graph's FanOut/FanIn semantics: out/in degree for directed graphs,
// the full incident degree for undirected ones. The slices are indexed by
// dense vertex index and valid until Release.
func (a Analytics) Degrees() (outDeg, inDeg []int64) {
	c, s := a.c, a.s
	nv := len(c.verts)
	s.lbl = sizeI64(s.lbl, nv)
	s.lbl2 = sizeI64(s.lbl2, nv)
	outDeg, inDeg = s.lbl, s.lbl2
	for v := int32(0); v < int32(nv); v++ {
		o := int64(c.outOff[v+1] - c.outOff[v])
		i := int64(c.inOff[v+1] - c.inOff[v])
		if c.directed {
			outDeg[v], inDeg[v] = o, i
		} else {
			outDeg[v], inDeg[v] = o+i, o+i
		}
	}
	return outDeg, inDeg
}

// --- Naive pointer-graph references -------------------------------------
//
// The Ref* functions are the single-threaded reference implementations
// over the live pointer topology. They serve three callers: the
// differential oracle (cross-checking the CSR kernels), the analytics
// bench's naive baseline, and the executor's ptr-layout path — walking
// vertexes in ascending-ID order and adjacency lists in list order, they
// reduce floats in exactly the order the CSR kernels do, so ptr and csr
// layouts return bit-identical rows over the same topology.

// refDegPR is the PageRank degree of v on the pointer graph, mirroring
// CSR.prDegree (undirected counts Out plus non-self-loop In, the traversal
// view's degree).
func refDegPR(g *Graph, v *Vertex) int {
	if g.Directed() {
		return len(v.Out)
	}
	d := len(v.Out)
	for _, e := range v.In {
		if e.From != e.To {
			d++
		}
	}
	return d
}

// RefPageRank is the reference PageRank, keyed by vertex identifier.
func RefPageRank(done <-chan struct{}, g *Graph, damping float64, maxIters int, eps float64) (map[int64]float64, int, error) {
	var vs []*Vertex
	g.Vertices(func(v *Vertex) bool { vs = append(vs, v); return true })
	nv := len(vs)
	if nv == 0 {
		return map[int64]float64{}, 0, nil
	}
	idx := make(map[*Vertex]int, nv)
	deg := make([]int, nv)
	for i, v := range vs {
		idx[v] = i
		deg[i] = refDegPR(g, v)
	}
	rank := make([]float64, nv)
	rank2 := make([]float64, nv)
	init := 1 / float64(nv)
	for i := range rank {
		rank[i] = init
	}
	n := float64(nv)
	iters := 0
	for it := 0; it < maxIters; it++ {
		if stoppedCh(done) {
			return nil, iters, ErrStopped
		}
		dangling := 0.0
		for i := range vs {
			if deg[i] == 0 {
				dangling += rank[i]
			}
		}
		base := (1-damping)/n + damping*dangling/n
		for i, v := range vs {
			sum := 0.0
			if g.Directed() {
				for _, e := range v.In {
					u := idx[e.From]
					sum += rank[u] / float64(deg[u])
				}
			} else {
				// The traversal-view order: Out first, then In skipping
				// self-loops — the order CSR.adjTo was laid out in.
				for _, e := range v.Out {
					u := idx[e.To]
					sum += rank[u] / float64(deg[u])
				}
				for _, e := range v.In {
					if e.From == e.To {
						continue
					}
					u := idx[e.From]
					sum += rank[u] / float64(deg[u])
				}
			}
			rank2[i] = base + damping*sum
		}
		delta := 0.0
		for i := range vs {
			d := rank2[i] - rank[i]
			if d < 0 {
				d = -d
			}
			delta += d
		}
		rank, rank2 = rank2, rank
		iters = it + 1
		if eps > 0 && delta <= eps {
			break
		}
	}
	out := make(map[int64]float64, nv)
	for i, v := range vs {
		out[v.ID] = rank[i]
	}
	return out, iters, nil
}

// RefComponents is the reference weakly-connected components: sequential
// BFS over out+in adjacency from ascending-ID roots, labeling every vertex
// with the smallest identifier in its component. The second result counts
// BFS levels, mirroring ComponentsStats.Levels.
func RefComponents(done <-chan struct{}, g *Graph) (map[int64]int64, int, error) {
	comp := make(map[int64]int64, g.NumVertices())
	levels := 0
	var frontier, nextF []*Vertex
	var err error
	g.Vertices(func(r *Vertex) bool {
		if _, seen := comp[r.ID]; seen {
			return true
		}
		label := r.ID
		comp[r.ID] = label
		if len(r.Out)+len(r.In) == 0 {
			return true
		}
		frontier = append(frontier[:0], r)
		for len(frontier) > 0 {
			if stoppedCh(done) {
				err = ErrStopped
				return false
			}
			levels++
			nextF = nextF[:0]
			for _, v := range frontier {
				for _, e := range v.Out {
					if _, seen := comp[e.To.ID]; !seen {
						comp[e.To.ID] = label
						nextF = append(nextF, e.To)
					}
				}
				for _, e := range v.In {
					if _, seen := comp[e.From.ID]; !seen {
						comp[e.From.ID] = label
						nextF = append(nextF, e.From)
					}
				}
			}
			frontier, nextF = nextF, frontier
		}
		return true
	})
	if err != nil {
		return nil, levels, err
	}
	return comp, levels, nil
}

// RefLabelProp is the reference synchronous label propagation, keyed by
// vertex identifier.
func RefLabelProp(done <-chan struct{}, g *Graph, maxIters int) (map[int64]int64, int, error) {
	var vs []*Vertex
	g.Vertices(func(v *Vertex) bool { vs = append(vs, v); return true })
	lbl := make(map[int64]int64, len(vs))
	for _, v := range vs {
		lbl[v.ID] = v.ID
	}
	next := make(map[int64]int64, len(vs))
	var buf []int64
	iters := 0
	for it := 0; it < maxIters; it++ {
		if stoppedCh(done) {
			return nil, iters, ErrStopped
		}
		changed := false
		for _, v := range vs {
			buf = buf[:0]
			for _, e := range v.Out {
				buf = append(buf, lbl[e.To.ID])
			}
			for _, e := range v.In {
				buf = append(buf, lbl[e.From.ID])
			}
			nl := mostFrequentLabel(buf, lbl[v.ID])
			next[v.ID] = nl
			if nl != lbl[v.ID] {
				changed = true
			}
		}
		lbl, next = next, lbl
		iters = it + 1
		if !changed {
			break
		}
	}
	return lbl, iters, nil
}

// RefDegrees is the reference degree computation, keyed by vertex
// identifier, with FanOut/FanIn semantics.
func RefDegrees(g *Graph) (outDeg, inDeg map[int64]int64) {
	outDeg = make(map[int64]int64, g.NumVertices())
	inDeg = make(map[int64]int64, g.NumVertices())
	g.Vertices(func(v *Vertex) bool {
		outDeg[v.ID] = int64(g.FanOut(v))
		inDeg[v.ID] = int64(g.FanIn(v))
		return true
	})
	return outDeg, inDeg
}
