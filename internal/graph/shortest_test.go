package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// weightedDiamond: 1->2 (w1), 1->3 (w5), 2->4 (w1), 3->4 (w1), 1->4 (w10).
func weightedDiamond() (*Graph, WeightFunc) {
	g := New("wd", true)
	for i := 1; i <= 4; i++ {
		g.AddVertex(int64(i), uint64(i))
	}
	g.AddEdge(1, 1, 2, 1)
	g.AddEdge(2, 1, 3, 2)
	g.AddEdge(3, 2, 4, 3)
	g.AddEdge(4, 3, 4, 4)
	g.AddEdge(5, 1, 4, 5)
	w := map[int64]float64{1: 1, 2: 5, 3: 1, 4: 1, 5: 10}
	return g, func(pos int, e *Edge, from, to *Vertex) (float64, bool) { return w[e.ID], true }
}

func TestDijkstraFindsCheapestPath(t *testing.T) {
	g, w := weightedDiamond()
	p, err := ShortestPath(g, g.Vertex(1), g.Vertex(4), w)
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || p.Cost != 2 || p.Len() != 2 {
		t.Fatalf("shortest = %v (cost %g)", p, p.Cost)
	}
	if p.Verts[1].ID != 2 {
		t.Errorf("wrong route via %d", p.Verts[1].ID)
	}
}

func TestDijkstraEmitsInCostOrder(t *testing.T) {
	g, w := weightedDiamond()
	it := NewShortest(g, Spec{Start: g.Vertex(1), MinLen: 0}, w, 1)
	var costs []float64
	for p := it.Next(); p != nil; p = it.Next() {
		costs = append(costs, p.Cost)
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if len(costs) != 4 { // one settled path per vertex
		t.Fatalf("settled %d paths", len(costs))
	}
	for i := 1; i < len(costs); i++ {
		if costs[i] < costs[i-1] {
			t.Fatalf("costs out of order: %v", costs)
		}
	}
}

func TestKShortestSimplePaths(t *testing.T) {
	g, w := weightedDiamond()
	it := NewShortest(g, Spec{Start: g.Vertex(1), Target: g.Vertex(4), MinLen: 1}, w, 3)
	var got []float64
	for p := it.Next(); p != nil; p = it.Next() {
		got = append(got, p.Cost)
	}
	want := []float64{2, 6, 10}
	if len(got) != len(want) {
		t.Fatalf("k-shortest costs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("k-shortest costs = %v, want %v", got, want)
		}
	}
}

func TestShortestUnreachable(t *testing.T) {
	g := chain(3, true)
	p, err := ShortestPath(g, g.Vertex(3), g.Vertex(1), UnitWeight)
	if err != nil || p != nil {
		t.Errorf("unreachable: p=%v err=%v", p, err)
	}
	p, err = ShortestPath(g, nil, g.Vertex(1), UnitWeight)
	if err != nil || p != nil {
		t.Errorf("nil start: p=%v err=%v", p, err)
	}
}

func TestNegativeWeightReported(t *testing.T) {
	g := chain(3, true)
	neg := func(pos int, e *Edge, from, to *Vertex) (float64, bool) { return -1, true }
	it := NewShortest(g, Spec{Start: g.Vertex(1), MinLen: 1}, neg, 1)
	if p := it.Next(); p != nil {
		t.Error("path emitted despite negative weight")
	}
	if it.Err() == nil {
		t.Error("negative weight not reported")
	}
}

func TestWeightFuncCanFilterEdges(t *testing.T) {
	g, w := weightedDiamond()
	// Exclude the 1->2 edge: best path becomes 1->3->4 at cost 6.
	filtered := func(pos int, e *Edge, from, to *Vertex) (float64, bool) {
		if e.ID == 1 {
			return 0, false
		}
		return w(pos, e, from, to)
	}
	p, err := ShortestPath(g, g.Vertex(1), g.Vertex(4), filtered)
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || p.Cost != 6 {
		t.Fatalf("filtered shortest cost = %v", p)
	}
}

func TestShortestRespectsMaxLen(t *testing.T) {
	g, w := weightedDiamond()
	it := NewShortest(g, Spec{Start: g.Vertex(1), Target: g.Vertex(4), MinLen: 1, MaxLen: 1}, w, 1)
	p := it.Next()
	if p == nil || p.Len() != 1 || p.Cost != 10 {
		t.Fatalf("maxlen-1 shortest = %v", p)
	}
}

// Property: on unit weights, Dijkstra's distance to any target equals the
// BFS hop distance.
func TestDijkstraMatchesBFSOnUnitWeights(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomGraph(25, 60, seed%1000)
		rng := rand.New(rand.NewSource(seed))
		target := g.Vertex(rng.Int63n(25))
		start := g.Vertex(0)

		bfs := NewBFS(g, Spec{Start: start, Target: target, MinLen: 0})
		bp := bfs.Next()
		sp, err := ShortestPath(g, start, target, UnitWeight)
		if err != nil {
			return false
		}
		if (bp == nil) != (sp == nil) {
			return false
		}
		if bp == nil {
			return true
		}
		return float64(bp.Len()) == sp.Cost && sp.Len() == bp.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: k-shortest emissions to a fixed target are nondecreasing in
// cost and are pairwise-distinct simple paths.
func TestKShortestOrderedAndSimple(t *testing.T) {
	prop := func(seed int64) bool {
		g := randomGraph(15, 40, seed%1000)
		rng := rand.New(rand.NewSource(seed + 1))
		w := map[int64]float64{}
		g.Edges(func(e *Edge) bool { w[e.ID] = float64(rng.Intn(10) + 1); return true })
		wf := func(pos int, e *Edge, from, to *Vertex) (float64, bool) { return w[e.ID], true }
		target := g.Vertex(rng.Int63n(15))
		it := NewShortest(g, Spec{Start: g.Vertex(0), Target: target, MinLen: 1}, wf, 4)
		seen := map[string]bool{}
		prev := 0.0
		for i := 0; i < 4; i++ {
			p := it.Next()
			if p == nil {
				break
			}
			if p.Cost < prev {
				return false
			}
			prev = p.Cost
			key := p.String()
			if seen[key] {
				return false
			}
			seen[key] = true
			vs := map[*Vertex]bool{}
			for _, v := range p.Verts {
				if vs[v] {
					return false
				}
				vs[v] = true
			}
		}
		return it.Err() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
