package expr

import (
	"fmt"
	"strings"

	"grfusion/internal/types"
)

// AggState accumulates one aggregate function over a stream of values. It
// is shared by the executor's hash-aggregate operator and by per-path
// aggregates (SUM(PS.Edges.W)). NULL inputs are skipped per SQL semantics;
// COUNT(*) is modeled by adding a non-null dummy value per row.
type AggState struct {
	name  string
	count int64
	sumI  int64
	sumF  float64
	isInt bool
	first bool
	best  types.Value // MIN/MAX running value

	distinct map[string]bool // non-nil for DISTINCT aggregates
}

// NewAggState creates an accumulator for the (upper-cased) aggregate name:
// COUNT, SUM, AVG, MIN or MAX.
func NewAggState(name string) *AggState {
	return &AggState{name: strings.ToUpper(name), isInt: true, first: true}
}

// NewDistinctAggState creates an accumulator that ignores duplicate inputs.
func NewDistinctAggState(name string) *AggState {
	s := NewAggState(name)
	s.distinct = make(map[string]bool)
	return s
}

// Add folds one value into the aggregate.
func (s *AggState) Add(v types.Value) error {
	if v.IsNull() {
		return nil
	}
	if s.distinct != nil {
		k := v.Key()
		if s.distinct[k] {
			return nil
		}
		s.distinct[k] = true
	}
	switch s.name {
	case "COUNT":
		s.count++
		return nil
	case "SUM", "AVG":
		if !v.IsNumeric() {
			return fmt.Errorf("%s on non-numeric value of kind %s", s.name, v.Kind)
		}
		s.count++
		if v.Kind == types.KindFloat {
			s.isInt = false
		}
		s.sumI += v.AsInt()
		s.sumF += v.AsFloat()
		return nil
	case "MIN":
		s.count++
		if s.first || types.Compare(v, s.best) < 0 {
			s.best = v
			s.first = false
		}
		return nil
	case "MAX":
		s.count++
		if s.first || types.Compare(v, s.best) > 0 {
			s.best = v
			s.first = false
		}
		return nil
	default:
		return fmt.Errorf("unknown aggregate %s", s.name)
	}
}

// Result returns the aggregate value. Empty SUM/AVG/MIN/MAX are NULL;
// empty COUNT is 0.
func (s *AggState) Result() types.Value {
	switch s.name {
	case "COUNT":
		return types.NewInt(s.count)
	case "SUM":
		if s.count == 0 {
			return types.Null()
		}
		if s.isInt {
			return types.NewInt(s.sumI)
		}
		return types.NewFloat(s.sumF)
	case "AVG":
		if s.count == 0 {
			return types.Null()
		}
		return types.NewFloat(s.sumF / float64(s.count))
	default:
		if s.first {
			return types.Null()
		}
		return s.best
	}
}
