package expr

import (
	"fmt"
	"strings"

	"grfusion/internal/types"
)

// PathBinding tells the binder where a path range variable's path column
// lives in the input schema and how to dereference its graph view.
type PathBinding struct {
	// Col is the position of the path column within the schema.
	Col int
	// Acc dereferences vertex/edge attributes of the path's graph view.
	Acc GraphAccessor
}

// Binder resolves names in an expression tree against an operator's input
// schema and the path range variables in scope.
type Binder struct {
	Schema *types.Schema
	// Paths maps lower-cased path aliases to their bindings.
	Paths map[string]PathBinding
}

// NewBinder creates a binder for the given schema with no path bindings.
func NewBinder(s *types.Schema) *Binder {
	return &Binder{Schema: s, Paths: map[string]PathBinding{}}
}

// WithPath registers a path range variable.
func (b *Binder) WithPath(alias string, pb PathBinding) *Binder {
	b.Paths[strings.ToLower(alias)] = pb
	return b
}

func (b *Binder) pathBinding(alias string) (PathBinding, bool) {
	pb, ok := b.Paths[strings.ToLower(alias)]
	return pb, ok
}

// Bind resolves every reference in e, rewriting RawRef nodes into their
// bound forms and (re)resolving column and path-column indexes. The input
// tree is mutated and returned; Clone first to keep the original. Unqualified
// column references are rewritten to carry their resolved qualifier.
// After binding, Validate checks placement rules for quantified references.
func (b *Binder) Bind(e Expr) (Expr, error) {
	out, err := Rewrite(e, func(n Expr) (Expr, error) {
		switch n := n.(type) {
		case *RawRef:
			return b.bindRaw(n)
		case *ColumnRef:
			return b.bindColumn(n)
		case *PathValueRef:
			pb, ok := b.pathBinding(n.Alias)
			if !ok {
				return nil, fmt.Errorf("unknown path variable %q", n.Alias)
			}
			n.Col = pb.Col
			return n, nil
		case *PathProperty:
			pb, ok := b.pathBinding(n.Alias)
			if !ok {
				return nil, fmt.Errorf("unknown path variable %q", n.Alias)
			}
			n.Col = pb.Col
			return n, nil
		case *PathVertexAttr:
			pb, ok := b.pathBinding(n.Alias)
			if !ok {
				return nil, fmt.Errorf("unknown path variable %q", n.Alias)
			}
			n.Col, n.Acc = pb.Col, pb.Acc
			return n, nil
		case *PathEndpointID:
			pb, ok := b.pathBinding(n.Alias)
			if !ok {
				return nil, fmt.Errorf("unknown path variable %q", n.Alias)
			}
			n.Col = pb.Col
			return n, nil
		case *PathElemAttr:
			pb, ok := b.pathBinding(n.Alias)
			if !ok {
				return nil, fmt.Errorf("unknown path variable %q", n.Alias)
			}
			n.Col, n.Acc = pb.Col, pb.Acc
			return n, nil
		default:
			return n, nil
		}
	})
	if err != nil {
		return nil, err
	}
	if err := Validate(out); err != nil {
		return nil, err
	}
	return out, nil
}

func (b *Binder) bindColumn(c *ColumnRef) (Expr, error) {
	// A bare identifier naming a path variable is the path value itself.
	if c.Qualifier == "" {
		if pb, ok := b.pathBinding(c.Name); ok {
			return &PathValueRef{Alias: c.Name, Col: pb.Col}, nil
		}
	}
	idx, err := b.Schema.Resolve(c.Qualifier, c.Name)
	if err != nil {
		return nil, err
	}
	c.Idx = idx
	if c.Qualifier == "" {
		c.Qualifier = b.Schema.Columns[idx].Qualifier
	}
	return c, nil
}

func (b *Binder) bindRaw(r *RawRef) (Expr, error) {
	parts := r.Parts
	if len(parts) == 0 {
		return nil, fmt.Errorf("empty reference")
	}
	if pb, isPath := b.pathBinding(parts[0].Name); isPath && !parts[0].HasIndex {
		return b.bindPathRef(r, pb)
	}
	// Plain (possibly qualified) column reference.
	for _, p := range parts {
		if p.HasIndex {
			return nil, fmt.Errorf("subscript on non-path reference %s", r)
		}
	}
	switch len(parts) {
	case 1:
		return b.bindColumn(&ColumnRef{Name: parts[0].Name, Idx: -1})
	case 2:
		return b.bindColumn(&ColumnRef{Qualifier: parts[0].Name, Name: parts[1].Name, Idx: -1})
	default:
		return nil, fmt.Errorf("unknown reference %s", r)
	}
}

func (b *Binder) bindPathRef(r *RawRef, pb PathBinding) (Expr, error) {
	parts := r.Parts
	alias := parts[0].Name
	if len(parts) == 1 {
		return &PathValueRef{Alias: alias, Col: pb.Col}, nil
	}
	head := parts[1]
	up := strings.ToUpper(head.Name)
	switch {
	case len(parts) == 2 && !head.HasIndex:
		switch up {
		case "LENGTH":
			return &PathProperty{Alias: alias, Prop: PropLength, Col: pb.Col}, nil
		case "PATHSTRING":
			return &PathProperty{Alias: alias, Prop: PropPathString, Col: pb.Col}, nil
		case "STARTVERTEXID":
			return &PathProperty{Alias: alias, Prop: PropStartVertexID, Col: pb.Col}, nil
		case "ENDVERTEXID":
			return &PathProperty{Alias: alias, Prop: PropEndVertexID, Col: pb.Col}, nil
		case "EDGES", "VERTEXES":
			// COUNT(PS.Edges): an unsubscripted element list, aggregate-only.
			return &PathElemAttr{Alias: alias, Elem: elemKindOf(up), Rng: Rng{All: true},
				Col: pb.Col, Acc: pb.Acc}, nil
		}
		return nil, fmt.Errorf("unknown path property %s", r)

	case up == "STARTVERTEX" || up == "ENDVERTEX":
		if head.HasIndex || len(parts) != 3 || parts[2].HasIndex {
			return nil, fmt.Errorf("malformed path vertex reference %s", r)
		}
		n := &PathVertexAttr{Alias: alias, End: up == "ENDVERTEX", Attr: parts[2].Name,
			Col: pb.Col, Acc: pb.Acc}
		if !pb.Acc.HasVertexAttr(n.Attr) {
			return nil, fmt.Errorf("unknown vertex attribute %q in %s", n.Attr, r)
		}
		return n, nil

	case up == "EDGES" || up == "VERTEXES":
		if len(parts) != 3 || parts[2].HasIndex {
			return nil, fmt.Errorf("malformed path element reference %s", r)
		}
		rng, err := rngOf(head, r)
		if err != nil {
			return nil, err
		}
		attr := parts[2].Name
		attrUp := strings.ToUpper(attr)
		if up == "EDGES" && (attrUp == "STARTVERTEX" || attrUp == "ENDVERTEX") {
			if !rng.Single() {
				return nil, fmt.Errorf("edge endpoint reference requires a single index: %s", r)
			}
			return &PathEndpointID{Alias: alias, Idx: rng.Start, End: attrUp == "ENDVERTEX",
				Col: pb.Col}, nil
		}
		n := &PathElemAttr{Alias: alias, Elem: elemKindOf(up), Rng: rng, Attr: attr,
			Col: pb.Col, Acc: pb.Acc}
		if n.Elem == ElemEdges && !pb.Acc.HasEdgeAttr(attr) {
			return nil, fmt.Errorf("unknown edge attribute %q in %s", attr, r)
		}
		if n.Elem == ElemVertexes && !pb.Acc.HasVertexAttr(attr) {
			return nil, fmt.Errorf("unknown vertex attribute %q in %s", attr, r)
		}
		return n, nil
	}
	return nil, fmt.Errorf("unknown path reference %s", r)
}

func elemKindOf(up string) ElemKind {
	if up == "VERTEXES" {
		return ElemVertexes
	}
	return ElemEdges
}

func rngOf(p RefPart, r *RawRef) (Rng, error) {
	if !p.HasIndex {
		return Rng{All: true}, nil
	}
	if p.Start < 0 || (!p.Wildcard && p.End < p.Start) {
		return Rng{}, fmt.Errorf("invalid subscript range in %s", r)
	}
	return Rng{Start: p.Start, End: p.End, Wildcard: p.Wildcard}, nil
}

// Validate enforces placement rules for path references:
//   - a quantified range (PS.Edges[0..*].a, PS.Edges[1..3].a) may only
//     appear as a direct operand of a comparison or IN predicate, and only
//     on one side;
//   - an unsubscripted element reference (PS.Edges.a) may only appear as
//     the argument of an aggregate function.
func Validate(e Expr) error {
	return validate(e, false)
}

func validate(e Expr, inAgg bool) error {
	switch n := e.(type) {
	case nil:
		return nil
	case *PathElemAttr:
		if n.Rng.All && !inAgg {
			return fmt.Errorf("%s is only valid inside an aggregate function", n)
		}
		if !n.Rng.All && n.Quantified() {
			return fmt.Errorf("quantified reference %s is only valid as a comparison or IN operand", n)
		}
		return nil
	case *BinaryExpr:
		if n.Op.IsComparison() {
			lq := quantified(n.L)
			rq := quantified(n.R)
			if lq && rq {
				return fmt.Errorf("both sides of %s are quantified path references", n)
			}
			if lq {
				if err := validateQuantifiedOperand(n.L); err != nil {
					return err
				}
				return validate(n.R, inAgg)
			}
			if rq {
				if err := validateQuantifiedOperand(n.R); err != nil {
					return err
				}
				return validate(n.L, inAgg)
			}
		}
		if err := validate(n.L, inAgg); err != nil {
			return err
		}
		return validate(n.R, inAgg)
	case *UnaryExpr:
		return validate(n.E, inAgg)
	case *InExpr:
		if quantified(n.E) {
			if err := validateQuantifiedOperand(n.E); err != nil {
				return err
			}
		} else if err := validate(n.E, inAgg); err != nil {
			return err
		}
		for _, x := range n.List {
			if err := validate(x, inAgg); err != nil {
				return err
			}
		}
		return nil
	case *IsNullExpr:
		return validate(n.E, inAgg)
	case *FuncCall:
		agg := AggNames[strings.ToUpper(n.Name)]
		for _, a := range n.Args {
			if err := validate(a, inAgg || agg); err != nil {
				return err
			}
		}
		return nil
	case *CaseExpr:
		for _, w := range n.Whens {
			if err := validate(w.Cond, inAgg); err != nil {
				return err
			}
			if err := validate(w.Then, inAgg); err != nil {
				return err
			}
		}
		return validate(n.Else, inAgg)
	default:
		return nil
	}
}

func validateQuantifiedOperand(e Expr) error {
	pe := e.(*PathElemAttr)
	if pe.Rng.All {
		return fmt.Errorf("%s is only valid inside an aggregate function", pe)
	}
	return nil
}

func quantified(e Expr) bool {
	pe, ok := e.(*PathElemAttr)
	return ok && pe.Quantified()
}

// Qualifiers returns the set of lower-cased range-variable names referenced
// by e (table qualifiers and path aliases). Unqualified, already-bound
// column references contribute their resolved qualifier.
func Qualifiers(e Expr) map[string]bool {
	out := map[string]bool{}
	Walk(e, func(n Expr) bool {
		switch n := n.(type) {
		case *ColumnRef:
			if n.Qualifier != "" {
				out[strings.ToLower(n.Qualifier)] = true
			}
		case *RawRef:
			if len(n.Parts) > 1 {
				out[strings.ToLower(n.Parts[0].Name)] = true
			}
		case *PathValueRef:
			out[strings.ToLower(n.Alias)] = true
		case *PathProperty:
			out[strings.ToLower(n.Alias)] = true
		case *PathVertexAttr:
			out[strings.ToLower(n.Alias)] = true
		case *PathEndpointID:
			out[strings.ToLower(n.Alias)] = true
		case *PathElemAttr:
			out[strings.ToLower(n.Alias)] = true
		}
		return true
	})
	return out
}

// HasAggregate reports whether e contains a relational aggregate call.
func HasAggregate(e Expr) bool {
	found := false
	Walk(e, func(n Expr) bool {
		if f, ok := n.(*FuncCall); ok && f.IsAggregate() {
			found = true
			return false
		}
		return true
	})
	return found
}
