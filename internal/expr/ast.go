// Package expr defines the expression AST shared by the SQL parser, the
// planner, and the executor, together with binding (name resolution) and
// evaluation.
//
// Besides ordinary relational expressions, the package implements the
// paper's path expressions (§4): PS.Length, PS.PathString,
// PS.StartVertex.attr / PS.EndVertex.attr, PS.Edges[i].attr,
// range-quantified references such as PS.Edges[0..*].attr (which assert the
// predicate over every edge in the range), step endpoints such as
// PS.Edges[2].EndVertex, and aggregates over a whole path such as
// SUM(PS.Edges.Weight).
//
// Boolean logic is two-valued: comparisons involving NULL or incomparable
// kinds evaluate to FALSE (not UNKNOWN). This matches how the paper's
// queries use predicates and keeps traversal-time filters cheap.
package expr

import (
	"fmt"
	"strings"

	"grfusion/internal/graph"
	"grfusion/internal/types"
)

// Expr is any expression node.
type Expr interface {
	fmt.Stringer
	// Clone returns a deep copy so one parse tree can be bound against
	// several schemas.
	Clone() Expr
}

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators.
const (
	OpEq BinOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpLike
)

var binOpNames = map[BinOp]string{
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR", OpAdd: "+", OpSub: "-", OpMul: "*",
	OpDiv: "/", OpMod: "%", OpLike: "LIKE",
}

// String returns the SQL spelling of the operator. Unknown values render
// as BinOp(<n>) instead of vanishing from the output.
func (op BinOp) String() string {
	if s, ok := binOpNames[op]; ok {
		return s
	}
	return fmt.Sprintf("BinOp(%d)", uint8(op))
}

// IsComparison reports whether op compares its operands.
func (op BinOp) IsComparison() bool { return op <= OpGe || op == OpLike }

// Literal is a constant value.
type Literal struct{ Val types.Value }

func (l *Literal) String() string {
	if l.Val.Kind == types.KindString {
		return "'" + strings.ReplaceAll(l.Val.S, "'", "''") + "'"
	}
	return l.Val.String()
}

// Clone implements Expr.
func (l *Literal) Clone() Expr { c := *l; return &c }

// Param is a positional statement parameter (`?`), bound at execution
// time from the prepared statement's argument list. VoltDB's execution
// model — which GRFusion inherits — compiles parameterized procedures once
// and executes them many times; Param is what makes that plan reuse
// possible here.
type Param struct {
	// Idx is the 0-based position within the statement's parameter list.
	Idx int
}

func (p *Param) String() string { return fmt.Sprintf("?%d", p.Idx+1) }

// Clone implements Expr.
func (p *Param) Clone() Expr { c := *p; return &c }

// ColumnRef names a column, optionally qualified by a table or range
// variable. Binding fills Idx.
type ColumnRef struct {
	Qualifier, Name string
	// Idx is the bound position in the input schema, or -1 before binding.
	Idx int
}

func (c *ColumnRef) String() string {
	if c.Qualifier == "" {
		return c.Name
	}
	return c.Qualifier + "." + c.Name
}

// Clone implements Expr.
func (c *ColumnRef) Clone() Expr { cc := *c; return &cc }

// BinaryExpr applies a binary operator. When one operand is a quantified
// path range reference (PS.Edges[0..*].attr), a comparison asserts the
// predicate for every element in the range.
type BinaryExpr struct {
	Op   BinOp
	L, R Expr
}

func (b *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Clone implements Expr.
func (b *BinaryExpr) Clone() Expr { return &BinaryExpr{Op: b.Op, L: b.L.Clone(), R: b.R.Clone()} }

// UnOp enumerates unary operators.
type UnOp uint8

// Unary operators.
const (
	OpNot UnOp = iota
	OpNeg
)

// UnaryExpr applies NOT or numeric negation.
type UnaryExpr struct {
	Op UnOp
	E  Expr
}

func (u *UnaryExpr) String() string {
	if u.Op == OpNot {
		return fmt.Sprintf("(NOT %s)", u.E)
	}
	return fmt.Sprintf("(-%s)", u.E)
}

// Clone implements Expr.
func (u *UnaryExpr) Clone() Expr { return &UnaryExpr{Op: u.Op, E: u.E.Clone()} }

// InExpr is `E [NOT] IN (list)`. A quantified path range on the left
// asserts membership for every element in the range.
type InExpr struct {
	E    Expr
	List []Expr
	Neg  bool
}

func (in *InExpr) String() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	not := ""
	if in.Neg {
		not = "NOT "
	}
	return fmt.Sprintf("(%s %sIN (%s))", in.E, not, strings.Join(parts, ", "))
}

// Clone implements Expr.
func (in *InExpr) Clone() Expr {
	list := make([]Expr, len(in.List))
	for i, e := range in.List {
		list[i] = e.Clone()
	}
	return &InExpr{E: in.E.Clone(), List: list, Neg: in.Neg}
}

// IsNullExpr is `E IS [NOT] NULL`.
type IsNullExpr struct {
	E   Expr
	Neg bool
}

func (n *IsNullExpr) String() string {
	if n.Neg {
		return fmt.Sprintf("(%s IS NOT NULL)", n.E)
	}
	return fmt.Sprintf("(%s IS NULL)", n.E)
}

// Clone implements Expr.
func (n *IsNullExpr) Clone() Expr { return &IsNullExpr{E: n.E.Clone(), Neg: n.Neg} }

// FuncCall is a scalar or aggregate function application. COUNT(*) is
// represented with Star set and no arguments.
type FuncCall struct {
	Name string
	Args []Expr
	Star bool
	// Distinct marks COUNT(DISTINCT x) style calls.
	Distinct bool
}

func (f *FuncCall) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s)", f.Name, d, strings.Join(parts, ", "))
}

// Clone implements Expr.
func (f *FuncCall) Clone() Expr {
	args := make([]Expr, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.Clone()
	}
	return &FuncCall{Name: f.Name, Args: args, Star: f.Star, Distinct: f.Distinct}
}

// AggNames lists the supported aggregate functions.
var AggNames = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// IsAggregate reports whether f is an aggregate call (COUNT/SUM/AVG/MIN/MAX)
// that is NOT a per-path aggregate (those evaluate row-at-a-time).
func (f *FuncCall) IsAggregate() bool {
	if !AggNames[strings.ToUpper(f.Name)] {
		return false
	}
	if f.Star {
		return true
	}
	if len(f.Args) == 1 {
		if pe, ok := f.Args[0].(*PathElemAttr); ok && pe.Rng.All {
			return false // SUM(PS.Edges.W): per-path, row-evaluable
		}
	}
	return true
}

// CaseExpr is a searched CASE expression.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr // may be nil
}

// CaseWhen is one WHEN/THEN arm.
type CaseWhen struct{ Cond, Then Expr }

func (c *CaseExpr) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", w.Cond, w.Then)
	}
	if c.Else != nil {
		fmt.Fprintf(&sb, " ELSE %s", c.Else)
	}
	sb.WriteString(" END")
	return sb.String()
}

// Clone implements Expr.
func (c *CaseExpr) Clone() Expr {
	out := &CaseExpr{Whens: make([]CaseWhen, len(c.Whens))}
	for i, w := range c.Whens {
		out.Whens[i] = CaseWhen{Cond: w.Cond.Clone(), Then: w.Then.Clone()}
	}
	if c.Else != nil {
		out.Else = c.Else.Clone()
	}
	return out
}

// --- Raw references -------------------------------------------------------

// RefPart is one segment of a dotted reference chain, optionally indexed.
type RefPart struct {
	Name string
	// HasIndex marks Name[...] subscripting.
	HasIndex bool
	// Start/End are the subscript bounds; End == Start for a single index.
	Start, End int
	// Wildcard marks an open range Name[i..*].
	Wildcard bool
}

// RawRef is an unresolved dotted reference as produced by the parser, e.g.
// U.Job, PS.Length, PS.Edges[0..*].StartDate. Binding rewrites it into a
// ColumnRef or one of the path nodes once the FROM-clause aliases are known.
type RawRef struct {
	Parts []RefPart
}

func (r *RawRef) String() string {
	var sb strings.Builder
	for i, p := range r.Parts {
		if i > 0 {
			sb.WriteByte('.')
		}
		sb.WriteString(p.Name)
		if p.HasIndex {
			if p.Wildcard {
				fmt.Fprintf(&sb, "[%d..*]", p.Start)
			} else if p.Start == p.End {
				fmt.Fprintf(&sb, "[%d]", p.Start)
			} else {
				fmt.Fprintf(&sb, "[%d..%d]", p.Start, p.End)
			}
		}
	}
	return sb.String()
}

// Clone implements Expr.
func (r *RawRef) Clone() Expr {
	return &RawRef{Parts: append([]RefPart(nil), r.Parts...)}
}

// --- Bound path nodes -----------------------------------------------------

// GraphAccessor dereferences vertex/edge attributes through the graph
// view's tuple pointers. *catalog.GraphView implements it.
type GraphAccessor interface {
	VertexAttrValue(v *graph.Vertex, name string) (types.Value, error)
	EdgeAttrValue(e *graph.Edge, name string) (types.Value, error)
	HasVertexAttr(name string) bool
	HasEdgeAttr(name string) bool
}

// PathValueRef is a bare reference to a path range variable (SELECT PS).
type PathValueRef struct {
	Alias string
	Col   int // bound column index of the path column
}

func (p *PathValueRef) String() string { return p.Alias }

// Clone implements Expr.
func (p *PathValueRef) Clone() Expr { c := *p; return &c }

// PathProp enumerates scalar path properties.
type PathProp uint8

// Path properties (§4).
const (
	PropLength PathProp = iota
	PropPathString
	PropStartVertexID
	PropEndVertexID
)

var pathPropNames = map[PathProp]string{
	PropLength: "Length", PropPathString: "PathString",
	PropStartVertexID: "StartVertexId", PropEndVertexID: "EndVertexId",
}

// PathProperty reads a scalar property of a path (PS.Length, ...).
type PathProperty struct {
	Alias string
	Prop  PathProp
	Col   int
}

func (p *PathProperty) String() string { return p.Alias + "." + pathPropNames[p.Prop] }

// Clone implements Expr.
func (p *PathProperty) Clone() Expr { c := *p; return &c }

// PathVertexAttr reads an attribute of the path's start or end vertex
// (PS.StartVertex.Id, PS.EndVertex.lstName). FanIn/FanOut work too.
type PathVertexAttr struct {
	Alias string
	End   bool // false = StartVertex, true = EndVertex
	Attr  string
	Col   int
	Acc   GraphAccessor
}

func (p *PathVertexAttr) String() string {
	which := "StartVertex"
	if p.End {
		which = "EndVertex"
	}
	return p.Alias + "." + which + "." + p.Attr
}

// Clone implements Expr.
func (p *PathVertexAttr) Clone() Expr { c := *p; return &c }

// PathEndpointID reads the traversal-order start or end vertex identifier
// of edge Idx within the path (PS.Edges[2].EndVertex), used by sub-graph
// pattern predicates such as the triangle closure in Listing 4.
type PathEndpointID struct {
	Alias string
	Idx   int
	End   bool
	Col   int
}

func (p *PathEndpointID) String() string {
	which := "StartVertex"
	if p.End {
		which = "EndVertex"
	}
	return fmt.Sprintf("%s.Edges[%d].%s", p.Alias, p.Idx, which)
}

// Clone implements Expr.
func (p *PathEndpointID) Clone() Expr { c := *p; return &c }

// ElemKind selects the edge or vertex list of a path.
type ElemKind uint8

// Path element kinds.
const (
	ElemEdges ElemKind = iota
	ElemVertexes
)

// Rng is a subscript range over path elements.
type Rng struct {
	// Start and End are inclusive 0-based bounds; End is ignored when
	// Wildcard is set.
	Start, End int
	// Wildcard marks [i..*].
	Wildcard bool
	// All marks an unsubscripted reference (PS.Edges.W), valid only inside
	// an aggregate function.
	All bool
}

// Single reports whether the range denotes exactly one position.
func (r Rng) Single() bool { return !r.All && !r.Wildcard && r.Start == r.End }

// PathElemAttr reads attribute Attr of the path's edges or vertexes over a
// subscript range. A Single range evaluates to a scalar; a quantified
// range is only legal as a comparison/IN operand (∀ semantics) and an All
// range only inside an aggregate.
type PathElemAttr struct {
	Alias string
	Elem  ElemKind
	Rng   Rng
	Attr  string
	Col   int
	Acc   GraphAccessor
}

func (p *PathElemAttr) String() string {
	elem := "Edges"
	if p.Elem == ElemVertexes {
		elem = "Vertexes"
	}
	sub := ""
	switch {
	case p.Rng.All:
	case p.Rng.Wildcard:
		sub = fmt.Sprintf("[%d..*]", p.Rng.Start)
	case p.Rng.Single():
		sub = fmt.Sprintf("[%d]", p.Rng.Start)
	default:
		sub = fmt.Sprintf("[%d..%d]", p.Rng.Start, p.Rng.End)
	}
	s := p.Alias + "." + elem + sub
	if p.Attr != "" {
		s += "." + p.Attr
	}
	return s
}

// Clone implements Expr.
func (p *PathElemAttr) Clone() Expr { c := *p; return &c }

// Quantified reports whether the reference spans multiple positions and so
// must be consumed by a quantifying comparison.
func (p *PathElemAttr) Quantified() bool { return p.Rng.Wildcard || p.Rng.All || !p.Rng.Single() }

// --- Walking --------------------------------------------------------------

// Walk calls fn for every node of the tree rooted at e, pre-order. If fn
// returns false the node's children are skipped.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch n := e.(type) {
	case *BinaryExpr:
		Walk(n.L, fn)
		Walk(n.R, fn)
	case *UnaryExpr:
		Walk(n.E, fn)
	case *InExpr:
		Walk(n.E, fn)
		for _, x := range n.List {
			Walk(x, fn)
		}
	case *IsNullExpr:
		Walk(n.E, fn)
	case *FuncCall:
		for _, x := range n.Args {
			Walk(x, fn)
		}
	case *CaseExpr:
		for _, w := range n.Whens {
			Walk(w.Cond, fn)
			Walk(w.Then, fn)
		}
		if n.Else != nil {
			Walk(n.Else, fn)
		}
	}
}

// Rewrite applies fn bottom-up, replacing each node by fn's result.
func Rewrite(e Expr, fn func(Expr) (Expr, error)) (Expr, error) {
	if e == nil {
		return nil, nil
	}
	var err error
	switch n := e.(type) {
	case *BinaryExpr:
		if n.L, err = Rewrite(n.L, fn); err != nil {
			return nil, err
		}
		if n.R, err = Rewrite(n.R, fn); err != nil {
			return nil, err
		}
	case *UnaryExpr:
		if n.E, err = Rewrite(n.E, fn); err != nil {
			return nil, err
		}
	case *InExpr:
		if n.E, err = Rewrite(n.E, fn); err != nil {
			return nil, err
		}
		for i := range n.List {
			if n.List[i], err = Rewrite(n.List[i], fn); err != nil {
				return nil, err
			}
		}
	case *IsNullExpr:
		if n.E, err = Rewrite(n.E, fn); err != nil {
			return nil, err
		}
	case *FuncCall:
		for i := range n.Args {
			if n.Args[i], err = Rewrite(n.Args[i], fn); err != nil {
				return nil, err
			}
		}
	case *CaseExpr:
		for i := range n.Whens {
			if n.Whens[i].Cond, err = Rewrite(n.Whens[i].Cond, fn); err != nil {
				return nil, err
			}
			if n.Whens[i].Then, err = Rewrite(n.Whens[i].Then, fn); err != nil {
				return nil, err
			}
		}
		if n.Else != nil {
			if n.Else, err = Rewrite(n.Else, fn); err != nil {
				return nil, err
			}
		}
	}
	return fn(e)
}

// SplitConjuncts flattens a tree of ANDs into its conjuncts.
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinaryExpr); ok && b.Op == OpAnd {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// JoinConjuncts rebuilds an AND tree from conjuncts (nil for none).
func JoinConjuncts(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &BinaryExpr{Op: OpAnd, L: out, R: e}
		}
	}
	return out
}
