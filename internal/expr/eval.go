package expr

import (
	"fmt"
	"math"
	"strings"

	"grfusion/internal/graph"
	"grfusion/internal/types"
)

// Env is the evaluation environment: one input tuple plus the statement's
// parameter values. Path values ride in the tuple as KindPath columns (the
// unified extended-tuple interface of §5.2).
type Env struct {
	Row types.Row
	// Params holds the positional arguments of a prepared statement.
	Params types.Row
}

// Eval evaluates a bound expression against env.
func Eval(e Expr, env *Env) (types.Value, error) {
	switch n := e.(type) {
	case *Literal:
		return n.Val, nil
	case *Param:
		if n.Idx < 0 || n.Idx >= len(env.Params) {
			return types.Null(), fmt.Errorf("statement parameter %s has no value (%d supplied)",
				n, len(env.Params))
		}
		return env.Params[n.Idx], nil
	case *ColumnRef:
		if n.Idx < 0 || n.Idx >= len(env.Row) {
			return types.Null(), fmt.Errorf("unbound column reference %s", n)
		}
		return env.Row[n.Idx], nil
	case *BinaryExpr:
		return evalBinary(n, env)
	case *UnaryExpr:
		return evalUnary(n, env)
	case *InExpr:
		return evalIn(n, env)
	case *IsNullExpr:
		v, err := Eval(n.E, env)
		if err != nil {
			return types.Null(), err
		}
		return types.NewBool(v.IsNull() != n.Neg), nil
	case *FuncCall:
		return evalFunc(n, env)
	case *CaseExpr:
		for _, w := range n.Whens {
			c, err := Eval(w.Cond, env)
			if err != nil {
				return types.Null(), err
			}
			if c.Truthy() {
				return Eval(w.Then, env)
			}
		}
		if n.Else != nil {
			return Eval(n.Else, env)
		}
		return types.Null(), nil
	case *PathValueRef:
		return env.Row[n.Col], nil
	case *PathProperty:
		p, err := pathAt(env.Row, n.Col)
		if err != nil {
			return types.Null(), err
		}
		switch n.Prop {
		case PropLength:
			return types.NewInt(int64(p.Len())), nil
		case PropPathString:
			return types.NewString(p.String()), nil
		case PropStartVertexID:
			return types.NewInt(p.Start().ID), nil
		default:
			return types.NewInt(p.End().ID), nil
		}
	case *PathVertexAttr:
		p, err := pathAt(env.Row, n.Col)
		if err != nil {
			return types.Null(), err
		}
		v := p.Start()
		if n.End {
			v = p.End()
		}
		return n.Acc.VertexAttrValue(v, n.Attr)
	case *PathEndpointID:
		p, err := pathAt(env.Row, n.Col)
		if err != nil {
			return types.Null(), err
		}
		if n.Idx >= p.Len() {
			return types.Null(), nil
		}
		if n.End {
			return types.NewInt(p.StepEnd(n.Idx).ID), nil
		}
		return types.NewInt(p.StepStart(n.Idx).ID), nil
	case *PathElemAttr:
		if n.Quantified() {
			return types.Null(), fmt.Errorf("quantified reference %s evaluated as a scalar", n)
		}
		p, err := pathAt(env.Row, n.Col)
		if err != nil {
			return types.Null(), err
		}
		if n.Rng.Start >= n.elemCount(p) {
			return types.Null(), nil
		}
		return n.elemValue(p, n.Rng.Start)
	case *RawRef:
		return types.Null(), fmt.Errorf("unbound reference %s", n)
	default:
		return types.Null(), fmt.Errorf("cannot evaluate %T", e)
	}
}

// EvalBool evaluates e and reports whether it is TRUE (NULL and
// non-boolean results are false).
func EvalBool(e Expr, env *Env) (bool, error) {
	v, err := Eval(e, env)
	if err != nil {
		return false, err
	}
	return v.Truthy(), nil
}

func pathAt(row types.Row, col int) (*graph.Path, error) {
	if col < 0 || col >= len(row) {
		return nil, fmt.Errorf("unbound path column %d", col)
	}
	v := row[col]
	p, ok := v.Ref.(*graph.Path)
	if v.Kind != types.KindPath || !ok {
		return nil, fmt.Errorf("column %d does not hold a path (kind %s)", col, v.Kind)
	}
	return p, nil
}

func (n *PathElemAttr) elemCount(p *graph.Path) int {
	if n.Elem == ElemVertexes {
		return len(p.Verts)
	}
	return len(p.Edges)
}

func (n *PathElemAttr) elemValue(p *graph.Path, i int) (types.Value, error) {
	if n.Elem == ElemVertexes {
		return n.Acc.VertexAttrValue(p.Verts[i], n.Attr)
	}
	return n.Acc.EdgeAttrValue(p.Edges[i], n.Attr)
}

// quantifiedPositions returns the element positions a quantified range
// covers on path p, and whether the range is satisfiable at all (a range
// whose start position does not exist on the path fails the predicate, the
// semantics §6.1's length inference relies on).
func (n *PathElemAttr) quantifiedPositions(p *graph.Path) (lo, hi int, ok bool) {
	count := n.elemCount(p)
	lo = n.Rng.Start
	switch {
	case n.Rng.All:
		return 0, count - 1, true
	case n.Rng.Wildcard:
		if lo >= count {
			return 0, 0, false
		}
		return lo, count - 1, true
	default:
		if n.Rng.End >= count {
			return 0, 0, false
		}
		return lo, n.Rng.End, true
	}
}

func evalBinary(b *BinaryExpr, env *Env) (types.Value, error) {
	if b.Op == OpAnd || b.Op == OpOr {
		l, err := Eval(b.L, env)
		if err != nil {
			return types.Null(), err
		}
		if b.Op == OpAnd && !l.Truthy() {
			return types.NewBool(false), nil
		}
		if b.Op == OpOr && l.Truthy() {
			return types.NewBool(true), nil
		}
		r, err := Eval(b.R, env)
		if err != nil {
			return types.Null(), err
		}
		return types.NewBool(r.Truthy()), nil
	}
	if b.Op.IsComparison() {
		// Quantified path-range comparisons: ∀ elements in range.
		if pe, ok := b.L.(*PathElemAttr); ok && pe.Quantified() {
			return evalQuantifiedCompare(pe, b.Op, b.R, env, false)
		}
		if pe, ok := b.R.(*PathElemAttr); ok && pe.Quantified() {
			return evalQuantifiedCompare(pe, b.Op, b.L, env, true)
		}
		l, err := Eval(b.L, env)
		if err != nil {
			return types.Null(), err
		}
		r, err := Eval(b.R, env)
		if err != nil {
			return types.Null(), err
		}
		return types.NewBool(compare(b.Op, l, r)), nil
	}
	// Arithmetic.
	l, err := Eval(b.L, env)
	if err != nil {
		return types.Null(), err
	}
	r, err := Eval(b.R, env)
	if err != nil {
		return types.Null(), err
	}
	return arith(b.Op, l, r)
}

func evalQuantifiedCompare(pe *PathElemAttr, op BinOp, other Expr, env *Env, flipped bool) (types.Value, error) {
	p, err := pathAt(env.Row, pe.Col)
	if err != nil {
		return types.Null(), err
	}
	o, err := Eval(other, env)
	if err != nil {
		return types.Null(), err
	}
	lo, hi, ok := pe.quantifiedPositions(p)
	if !ok {
		return types.NewBool(false), nil
	}
	for i := lo; i <= hi; i++ {
		v, err := pe.elemValue(p, i)
		if err != nil {
			return types.Null(), err
		}
		var res bool
		if flipped {
			res = compare(op, o, v)
		} else {
			res = compare(op, v, o)
		}
		if !res {
			return types.NewBool(false), nil
		}
	}
	return types.NewBool(true), nil
}

// CompareOp applies a comparison operator under the engine's two-valued
// semantics: NULL or incomparable operands yield false. The executor's
// pushed-down traversal filters reuse it.
func CompareOp(op BinOp, l, r types.Value) bool { return compare(op, l, r) }

func compare(op BinOp, l, r types.Value) bool {
	if op == OpLike {
		if l.Kind != types.KindString || r.Kind != types.KindString {
			return false
		}
		return MatchLike(l.S, r.S)
	}
	if l.IsNull() || r.IsNull() {
		return false
	}
	if !types.Comparable(l.Kind, r.Kind) {
		return false
	}
	c := types.Compare(l, r)
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	default:
		return c >= 0
	}
}

func arith(op BinOp, l, r types.Value) (types.Value, error) {
	if l.IsNull() || r.IsNull() {
		return types.Null(), nil
	}
	if !l.IsNumeric() || !r.IsNumeric() {
		return types.Null(), fmt.Errorf("%s applied to non-numeric operands (%s, %s)",
			op, l.Kind, r.Kind)
	}
	if op == OpMod {
		if l.Kind != types.KindInt || r.Kind != types.KindInt {
			return types.Null(), fmt.Errorf("%% requires BIGINT operands")
		}
		if r.I == 0 {
			return types.Null(), fmt.Errorf("division by zero")
		}
		return types.NewInt(l.I % r.I), nil
	}
	if l.Kind == types.KindInt && r.Kind == types.KindInt {
		switch op {
		case OpAdd:
			return types.NewInt(l.I + r.I), nil
		case OpSub:
			return types.NewInt(l.I - r.I), nil
		case OpMul:
			return types.NewInt(l.I * r.I), nil
		default: // OpDiv
			if r.I == 0 {
				return types.Null(), fmt.Errorf("division by zero")
			}
			return types.NewInt(l.I / r.I), nil
		}
	}
	lf, rf := l.AsFloat(), r.AsFloat()
	switch op {
	case OpAdd:
		return types.NewFloat(lf + rf), nil
	case OpSub:
		return types.NewFloat(lf - rf), nil
	case OpMul:
		return types.NewFloat(lf * rf), nil
	default:
		if rf == 0 {
			return types.Null(), fmt.Errorf("division by zero")
		}
		return types.NewFloat(lf / rf), nil
	}
}

func evalUnary(u *UnaryExpr, env *Env) (types.Value, error) {
	v, err := Eval(u.E, env)
	if err != nil {
		return types.Null(), err
	}
	if u.Op == OpNot {
		return types.NewBool(!v.Truthy()), nil
	}
	switch v.Kind {
	case types.KindNull:
		return v, nil
	case types.KindInt:
		return types.NewInt(-v.I), nil
	case types.KindFloat:
		return types.NewFloat(-v.F), nil
	default:
		return types.Null(), fmt.Errorf("unary minus on %s", v.Kind)
	}
}

func evalIn(in *InExpr, env *Env) (types.Value, error) {
	check := func(v types.Value) (bool, error) {
		for _, le := range in.List {
			lv, err := Eval(le, env)
			if err != nil {
				return false, err
			}
			if compare(OpEq, v, lv) {
				return true, nil
			}
		}
		return false, nil
	}
	if pe, ok := in.E.(*PathElemAttr); ok && pe.Quantified() {
		p, err := pathAt(env.Row, pe.Col)
		if err != nil {
			return types.Null(), err
		}
		lo, hi, ok := pe.quantifiedPositions(p)
		if !ok {
			return types.NewBool(in.Neg), nil
		}
		for i := lo; i <= hi; i++ {
			v, err := pe.elemValue(p, i)
			if err != nil {
				return types.Null(), err
			}
			hit, err := check(v)
			if err != nil {
				return types.Null(), err
			}
			if hit == in.Neg {
				return types.NewBool(false), nil
			}
		}
		return types.NewBool(true), nil
	}
	v, err := Eval(in.E, env)
	if err != nil {
		return types.Null(), err
	}
	hit, err := check(v)
	if err != nil {
		return types.Null(), err
	}
	return types.NewBool(hit != in.Neg), nil
}

// MatchLike implements the SQL LIKE pattern language: % matches any
// sequence (including empty), _ matches exactly one character. Matching is
// case-sensitive, as in VoltDB.
func MatchLike(s, pattern string) bool {
	// Iterative two-pointer matcher with backtracking on the last %.
	si, pi := 0, 0
	star, ss := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star, ss = pi, si
			pi++
		case star >= 0:
			ss++
			si, pi = ss, star+1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

func evalFunc(f *FuncCall, env *Env) (types.Value, error) {
	name := strings.ToUpper(f.Name)
	if AggNames[name] {
		if f.IsAggregate() {
			return types.Null(), fmt.Errorf("aggregate %s must be planned by a GROUP BY pipeline", f)
		}
		return evalPathAggregate(name, f.Args[0].(*PathElemAttr), env)
	}
	args := make([]types.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := Eval(a, env)
		if err != nil {
			return types.Null(), err
		}
		args[i] = v
	}
	switch name {
	case "ABS":
		if err := wantArgs(f, args, 1); err != nil {
			return types.Null(), err
		}
		switch args[0].Kind {
		case types.KindNull:
			return args[0], nil
		case types.KindInt:
			if args[0].I < 0 {
				return types.NewInt(-args[0].I), nil
			}
			return args[0], nil
		case types.KindFloat:
			return types.NewFloat(math.Abs(args[0].F)), nil
		}
		return types.Null(), fmt.Errorf("ABS on %s", args[0].Kind)
	case "FLOOR", "CEIL":
		if err := wantArgs(f, args, 1); err != nil {
			return types.Null(), err
		}
		if args[0].IsNull() {
			return args[0], nil
		}
		if !args[0].IsNumeric() {
			return types.Null(), fmt.Errorf("%s on %s", name, args[0].Kind)
		}
		fv := args[0].AsFloat()
		if name == "FLOOR" {
			return types.NewFloat(math.Floor(fv)), nil
		}
		return types.NewFloat(math.Ceil(fv)), nil
	case "UPPER", "LOWER":
		if err := wantArgs(f, args, 1); err != nil {
			return types.Null(), err
		}
		if args[0].IsNull() {
			return args[0], nil
		}
		if args[0].Kind != types.KindString {
			return types.Null(), fmt.Errorf("%s on %s", name, args[0].Kind)
		}
		if name == "UPPER" {
			return types.NewString(strings.ToUpper(args[0].S)), nil
		}
		return types.NewString(strings.ToLower(args[0].S)), nil
	case "LENGTH":
		if err := wantArgs(f, args, 1); err != nil {
			return types.Null(), err
		}
		if args[0].IsNull() {
			return args[0], nil
		}
		if args[0].Kind != types.KindString {
			return types.Null(), fmt.Errorf("LENGTH on %s", args[0].Kind)
		}
		return types.NewInt(int64(len(args[0].S))), nil
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return types.Null(), nil
	default:
		return types.Null(), fmt.Errorf("unknown function %s", f.Name)
	}
}

func wantArgs(f *FuncCall, args []types.Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("%s expects %d argument(s), got %d", strings.ToUpper(f.Name), n, len(args))
	}
	return nil
}

// evalPathAggregate computes SUM/AVG/MIN/MAX/COUNT over all elements of a
// path (SUM(PS.Edges.Weight), COUNT(PS.Edges)). NULL attribute values are
// skipped, as in relational aggregates.
func evalPathAggregate(name string, pe *PathElemAttr, env *Env) (types.Value, error) {
	p, err := pathAt(env.Row, pe.Col)
	if err != nil {
		return types.Null(), err
	}
	count := pe.elemCount(p)
	if pe.Attr == "" {
		if name != "COUNT" {
			return types.Null(), fmt.Errorf("%s(%s) requires an attribute", name, pe)
		}
		return types.NewInt(int64(count)), nil
	}
	agg := NewAggState(name)
	for i := 0; i < count; i++ {
		v, err := pe.elemValue(p, i)
		if err != nil {
			return types.Null(), err
		}
		if err := agg.Add(v); err != nil {
			return types.Null(), err
		}
	}
	return agg.Result(), nil
}
