package expr

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"grfusion/internal/graph"
	"grfusion/internal/types"
)

// fakeAcc serves vertex/edge attributes from in-memory maps, standing in
// for a catalog.GraphView in unit tests.
type fakeAcc struct {
	vattrs map[int64]map[string]types.Value
	eattrs map[int64]map[string]types.Value
}

func (a *fakeAcc) VertexAttrValue(v *graph.Vertex, name string) (types.Value, error) {
	m := a.vattrs[v.ID]
	for k, val := range m {
		if strings.EqualFold(k, name) {
			return val, nil
		}
	}
	return types.Null(), fmt.Errorf("no vertex attr %s", name)
}
func (a *fakeAcc) EdgeAttrValue(e *graph.Edge, name string) (types.Value, error) {
	m := a.eattrs[e.ID]
	for k, val := range m {
		if strings.EqualFold(k, name) {
			return val, nil
		}
	}
	return types.Null(), fmt.Errorf("no edge attr %s", name)
}
func (a *fakeAcc) HasVertexAttr(name string) bool {
	for _, m := range a.vattrs {
		for k := range m {
			if strings.EqualFold(k, name) {
				return true
			}
		}
		break
	}
	return false
}
func (a *fakeAcc) HasEdgeAttr(name string) bool {
	for _, m := range a.eattrs {
		for k := range m {
			if strings.EqualFold(k, name) {
				return true
			}
		}
		break
	}
	return false
}

// fixture: path 1 -[10]-> 2 -[11]-> 3 with edge weights 4, 6 and vertex
// names a, b, c.
func pathFixture() (*graph.Path, *fakeAcc) {
	g := graph.New("t", true)
	v1, _ := g.AddVertex(1, 1)
	v2, _ := g.AddVertex(2, 2)
	v3, _ := g.AddVertex(3, 3)
	e1, _ := g.AddEdge(10, 1, 2, 1)
	e2, _ := g.AddEdge(11, 2, 3, 2)
	p := &graph.Path{Edges: []*graph.Edge{e1, e2}, Verts: []*graph.Vertex{v1, v2, v3}}
	acc := &fakeAcc{
		vattrs: map[int64]map[string]types.Value{
			1: {"ID": types.NewInt(1), "name": types.NewString("a")},
			2: {"ID": types.NewInt(2), "name": types.NewString("b")},
			3: {"ID": types.NewInt(3), "name": types.NewString("c")},
		},
		eattrs: map[int64]map[string]types.Value{
			10: {"ID": types.NewInt(10), "weight": types.NewInt(4), "lbl": types.NewString("x")},
			11: {"ID": types.NewInt(11), "weight": types.NewInt(6), "lbl": types.NewString("y")},
		},
	}
	return p, acc
}

// pathEnv builds a schema [u.job VARCHAR, ps.__path PATH], a row carrying
// the fixture path, and a ready binder.
func pathEnv(t *testing.T) (*Binder, *Env, *graph.Path) {
	t.Helper()
	p, acc := pathFixture()
	schema := types.NewSchema(
		types.Column{Qualifier: "u", Name: "job", Type: types.KindString},
		types.Column{Qualifier: "ps", Name: "__path", Type: types.KindPath},
	)
	b := NewBinder(schema).WithPath("PS", PathBinding{Col: 1, Acc: acc})
	env := &Env{Row: types.Row{types.NewString("Lawyer"), types.NewRef(types.KindPath, p)}}
	return b, env, p
}

func bindEval(t *testing.T, b *Binder, env *Env, e Expr) types.Value {
	t.Helper()
	be, err := b.Bind(e)
	if err != nil {
		t.Fatalf("bind %s: %v", e, err)
	}
	v, err := Eval(be, env)
	if err != nil {
		t.Fatalf("eval %s: %v", be, err)
	}
	return v
}

func ref(parts ...RefPart) *RawRef { return &RawRef{Parts: parts} }
func part(name string) RefPart     { return RefPart{Name: name} }
func idx(name string, i int) RefPart {
	return RefPart{Name: name, HasIndex: true, Start: i, End: i}
}
func rangePart(name string, i, j int) RefPart {
	return RefPart{Name: name, HasIndex: true, Start: i, End: j}
}
func wild(name string, i int) RefPart {
	return RefPart{Name: name, HasIndex: true, Start: i, End: -1, Wildcard: true}
}
func lit(v types.Value) *Literal { return &Literal{Val: v} }

func TestLiteralAndColumn(t *testing.T) {
	b, env, _ := pathEnv(t)
	if v := bindEval(t, b, env, lit(types.NewInt(7))); v.I != 7 {
		t.Errorf("literal = %v", v)
	}
	if v := bindEval(t, b, env, ref(part("u"), part("job"))); v.S != "Lawyer" {
		t.Errorf("u.job = %v", v)
	}
	// Unqualified resolution.
	if v := bindEval(t, b, env, ref(part("job"))); v.S != "Lawyer" {
		t.Errorf("job = %v", v)
	}
	if _, err := b.Bind(ref(part("ghost"))); err == nil {
		t.Error("unknown column bound")
	}
}

func TestPathProperties(t *testing.T) {
	b, env, p := pathEnv(t)
	if v := bindEval(t, b, env, ref(part("PS"), part("Length"))); v.I != 2 {
		t.Errorf("Length = %v", v)
	}
	if v := bindEval(t, b, env, ref(part("PS"), part("PathString"))); v.S != p.String() {
		t.Errorf("PathString = %v", v)
	}
	if v := bindEval(t, b, env, ref(part("PS"), part("StartVertexId"))); v.I != 1 {
		t.Errorf("StartVertexId = %v", v)
	}
	if v := bindEval(t, b, env, ref(part("PS"), part("EndVertexId"))); v.I != 3 {
		t.Errorf("EndVertexId = %v", v)
	}
	// Bare alias yields the path value.
	if v := bindEval(t, b, env, ref(part("PS"))); v.Kind != types.KindPath {
		t.Errorf("bare PS kind = %v", v.Kind)
	}
}

func TestPathVertexAttr(t *testing.T) {
	b, env, _ := pathEnv(t)
	if v := bindEval(t, b, env, ref(part("PS"), part("StartVertex"), part("name"))); v.S != "a" {
		t.Errorf("StartVertex.name = %v", v)
	}
	if v := bindEval(t, b, env, ref(part("PS"), part("EndVertex"), part("Id"))); v.I != 3 {
		t.Errorf("EndVertex.Id = %v", v)
	}
	if _, err := b.Bind(ref(part("PS"), part("StartVertex"), part("nosuch"))); err == nil {
		t.Error("unknown vertex attr bound")
	}
}

func TestPathSingleElemAttr(t *testing.T) {
	b, env, _ := pathEnv(t)
	if v := bindEval(t, b, env, ref(part("PS"), idx("Edges", 0), part("weight"))); v.I != 4 {
		t.Errorf("Edges[0].weight = %v", v)
	}
	if v := bindEval(t, b, env, ref(part("PS"), idx("Vertexes", 1), part("name"))); v.S != "b" {
		t.Errorf("Vertexes[1].name = %v", v)
	}
	// Out-of-range single index is NULL.
	if v := bindEval(t, b, env, ref(part("PS"), idx("Edges", 9), part("weight"))); !v.IsNull() {
		t.Errorf("Edges[9].weight = %v, want NULL", v)
	}
}

func TestPathEndpointIDs(t *testing.T) {
	b, env, _ := pathEnv(t)
	if v := bindEval(t, b, env, ref(part("PS"), idx("Edges", 1), part("EndVertex"))); v.I != 3 {
		t.Errorf("Edges[1].EndVertex = %v", v)
	}
	if v := bindEval(t, b, env, ref(part("PS"), idx("Edges", 0), part("StartVertex"))); v.I != 1 {
		t.Errorf("Edges[0].StartVertex = %v", v)
	}
	// Triangle-closure style predicate.
	e := &BinaryExpr{Op: OpEq,
		L: ref(part("PS"), idx("Edges", 1), part("EndVertex")),
		R: lit(types.NewInt(3))}
	if v := bindEval(t, b, env, e); !v.Truthy() {
		t.Error("closure predicate false")
	}
}

func TestQuantifiedRangeComparisons(t *testing.T) {
	b, env, _ := pathEnv(t)
	// All edge weights > 3 holds (4, 6).
	e := &BinaryExpr{Op: OpGt,
		L: ref(part("PS"), wild("Edges", 0), part("weight")), R: lit(types.NewInt(3))}
	if v := bindEval(t, b, env, e); !v.Truthy() {
		t.Error("∀ weight > 3 must hold")
	}
	// All edge weights > 5 fails (edge 0 has 4).
	e = &BinaryExpr{Op: OpGt,
		L: ref(part("PS"), wild("Edges", 0), part("weight")), R: lit(types.NewInt(5))}
	if v := bindEval(t, b, env, e); v.Truthy() {
		t.Error("∀ weight > 5 must fail")
	}
	// Flipped operand side: 5 < all weights from position 1.
	e = &BinaryExpr{Op: OpLt,
		L: lit(types.NewInt(5)), R: ref(part("PS"), wild("Edges", 1), part("weight"))}
	if v := bindEval(t, b, env, e); !v.Truthy() {
		t.Error("5 < Edges[1..*].weight must hold")
	}
	// A range whose start is beyond the path length is unsatisfiable.
	e = &BinaryExpr{Op: OpGt,
		L: ref(part("PS"), wild("Edges", 5), part("weight")), R: lit(types.NewInt(0))}
	if v := bindEval(t, b, env, e); v.Truthy() {
		t.Error("Edges[5..*] on a 2-edge path must be false")
	}
	// Closed range exceeding the length is unsatisfiable too.
	e = &BinaryExpr{Op: OpGt,
		L: ref(part("PS"), rangePart("Edges", 0, 4), part("weight")), R: lit(types.NewInt(0))}
	if v := bindEval(t, b, env, e); v.Truthy() {
		t.Error("Edges[0..4] on a 2-edge path must be false")
	}
	// In-bounds closed range.
	e = &BinaryExpr{Op: OpGe,
		L: ref(part("PS"), rangePart("Edges", 0, 1), part("weight")), R: lit(types.NewInt(4))}
	if v := bindEval(t, b, env, e); !v.Truthy() {
		t.Error("Edges[0..1].weight >= 4 must hold")
	}
}

func TestQuantifiedIn(t *testing.T) {
	b, env, _ := pathEnv(t)
	in := &InExpr{E: ref(part("PS"), wild("Edges", 0), part("lbl")),
		List: []Expr{lit(types.NewString("x")), lit(types.NewString("y"))}}
	if v := bindEval(t, b, env, in); !v.Truthy() {
		t.Error("∀ lbl IN (x,y) must hold")
	}
	in = &InExpr{E: ref(part("PS"), wild("Edges", 0), part("lbl")),
		List: []Expr{lit(types.NewString("x"))}}
	if v := bindEval(t, b, env, in); v.Truthy() {
		t.Error("∀ lbl IN (x) must fail")
	}
	// NOT IN: no edge label may be in the list.
	in = &InExpr{E: ref(part("PS"), wild("Edges", 0), part("lbl")),
		List: []Expr{lit(types.NewString("z"))}, Neg: true}
	if v := bindEval(t, b, env, in); !v.Truthy() {
		t.Error("∀ lbl NOT IN (z) must hold")
	}
}

func TestPathAggregates(t *testing.T) {
	b, env, _ := pathEnv(t)
	sum := &FuncCall{Name: "SUM", Args: []Expr{ref(part("PS"), part("Edges"), part("weight"))}}
	if v := bindEval(t, b, env, sum); v.I != 10 {
		t.Errorf("SUM(PS.Edges.weight) = %v", v)
	}
	avg := &FuncCall{Name: "AVG", Args: []Expr{ref(part("PS"), part("Edges"), part("weight"))}}
	if v := bindEval(t, b, env, avg); v.F != 5 {
		t.Errorf("AVG = %v", v)
	}
	cnt := &FuncCall{Name: "COUNT", Args: []Expr{ref(part("PS"), part("Edges"))}}
	if v := bindEval(t, b, env, cnt); v.I != 2 {
		t.Errorf("COUNT(PS.Edges) = %v", v)
	}
	mx := &FuncCall{Name: "MAX", Args: []Expr{ref(part("PS"), part("Vertexes"), part("name"))}}
	if v := bindEval(t, b, env, mx); v.S != "c" {
		t.Errorf("MAX(PS.Vertexes.name) = %v", v)
	}
}

func TestValidationRules(t *testing.T) {
	b, _, _ := pathEnv(t)
	// Quantified ref outside a predicate.
	if _, err := b.Bind(&BinaryExpr{Op: OpAdd,
		L: ref(part("PS"), wild("Edges", 0), part("weight")), R: lit(types.NewInt(1))}); err == nil {
		t.Error("quantified ref in arithmetic accepted")
	}
	// Both sides quantified.
	if _, err := b.Bind(&BinaryExpr{Op: OpEq,
		L: ref(part("PS"), wild("Edges", 0), part("weight")),
		R: ref(part("PS"), wild("Edges", 0), part("weight"))}); err == nil {
		t.Error("double-quantified comparison accepted")
	}
	// Unsubscripted element list outside an aggregate.
	if _, err := b.Bind(&BinaryExpr{Op: OpEq,
		L: ref(part("PS"), part("Edges"), part("weight")), R: lit(types.NewInt(1))}); err == nil {
		t.Error("PS.Edges.w outside aggregate accepted")
	}
	// Bad range.
	if _, err := b.Bind(ref(part("PS"), rangePart("Edges", 3, 1), part("weight"))); err == nil {
		t.Error("reversed range accepted")
	}
	// Subscript on a non-path reference.
	if _, err := b.Bind(ref(idx("u", 0), part("job"))); err == nil {
		t.Error("subscripted table ref accepted")
	}
	// Unknown path member.
	if _, err := b.Bind(ref(part("PS"), part("Bogus"))); err == nil {
		t.Error("unknown path property accepted")
	}
	// Ranged endpoint reference.
	if _, err := b.Bind(ref(part("PS"), wild("Edges", 0), part("EndVertex"))); err == nil {
		t.Error("ranged endpoint ref accepted")
	}
}

func TestLogicArithmeticComparisons(t *testing.T) {
	env := &Env{Row: types.Row{}}
	evalv := func(e Expr) types.Value {
		v, err := Eval(e, env)
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		return v
	}
	// Arithmetic typing.
	if v := evalv(&BinaryExpr{Op: OpAdd, L: lit(types.NewInt(2)), R: lit(types.NewInt(3))}); v.Kind != types.KindInt || v.I != 5 {
		t.Errorf("2+3 = %v", v)
	}
	if v := evalv(&BinaryExpr{Op: OpDiv, L: lit(types.NewInt(7)), R: lit(types.NewInt(2))}); v.I != 3 {
		t.Errorf("7/2 = %v (int division)", v)
	}
	if v := evalv(&BinaryExpr{Op: OpMul, L: lit(types.NewInt(2)), R: lit(types.NewFloat(1.5))}); v.Kind != types.KindFloat || v.F != 3 {
		t.Errorf("2*1.5 = %v", v)
	}
	if v := evalv(&BinaryExpr{Op: OpMod, L: lit(types.NewInt(7)), R: lit(types.NewInt(4))}); v.I != 3 {
		t.Errorf("7%%4 = %v", v)
	}
	if _, err := Eval(&BinaryExpr{Op: OpDiv, L: lit(types.NewInt(1)), R: lit(types.NewInt(0))}, env); err == nil {
		t.Error("division by zero succeeded")
	}
	// NULL propagation in arithmetic; NULL rejection in comparisons.
	if v := evalv(&BinaryExpr{Op: OpAdd, L: lit(types.Null()), R: lit(types.NewInt(1))}); !v.IsNull() {
		t.Errorf("NULL+1 = %v", v)
	}
	if v := evalv(&BinaryExpr{Op: OpEq, L: lit(types.Null()), R: lit(types.Null())}); v.Truthy() {
		t.Error("NULL = NULL must be false (two-valued logic)")
	}
	// Incomparable kinds compare false.
	if v := evalv(&BinaryExpr{Op: OpEq, L: lit(types.NewString("3")), R: lit(types.NewInt(3))}); v.Truthy() {
		t.Error("'3' = 3 must be false")
	}
	// AND/OR short-circuit.
	boom := &BinaryExpr{Op: OpDiv, L: lit(types.NewInt(1)), R: lit(types.NewInt(0))}
	if v := evalv(&BinaryExpr{Op: OpAnd, L: lit(types.NewBool(false)), R: boom}); v.Truthy() {
		t.Error("AND short-circuit broken")
	}
	if v := evalv(&BinaryExpr{Op: OpOr, L: lit(types.NewBool(true)), R: boom}); !v.Truthy() {
		t.Error("OR short-circuit broken")
	}
	// NOT / negation.
	if v := evalv(&UnaryExpr{Op: OpNot, E: lit(types.NewBool(false))}); !v.Truthy() {
		t.Error("NOT false")
	}
	if v := evalv(&UnaryExpr{Op: OpNeg, E: lit(types.NewInt(4))}); v.I != -4 {
		t.Errorf("-4 = %v", v)
	}
	// IS NULL.
	if v := evalv(&IsNullExpr{E: lit(types.Null())}); !v.Truthy() {
		t.Error("NULL IS NULL")
	}
	if v := evalv(&IsNullExpr{E: lit(types.NewInt(1)), Neg: true}); !v.Truthy() {
		t.Error("1 IS NOT NULL")
	}
}

func TestCaseExpr(t *testing.T) {
	env := &Env{}
	c := &CaseExpr{
		Whens: []CaseWhen{
			{Cond: lit(types.NewBool(false)), Then: lit(types.NewInt(1))},
			{Cond: lit(types.NewBool(true)), Then: lit(types.NewInt(2))},
		},
		Else: lit(types.NewInt(3)),
	}
	v, err := Eval(c, env)
	if err != nil || v.I != 2 {
		t.Errorf("CASE = %v, %v", v, err)
	}
	c.Whens[1].Cond = lit(types.NewBool(false))
	if v, _ := Eval(c, env); v.I != 3 {
		t.Errorf("CASE else = %v", v)
	}
	c.Else = nil
	if v, _ := Eval(c, env); !v.IsNull() {
		t.Errorf("CASE no-else = %v", v)
	}
}

func TestScalarFunctions(t *testing.T) {
	env := &Env{}
	cases := []struct {
		f    *FuncCall
		want types.Value
	}{
		{&FuncCall{Name: "ABS", Args: []Expr{lit(types.NewInt(-5))}}, types.NewInt(5)},
		{&FuncCall{Name: "ABS", Args: []Expr{lit(types.NewFloat(-2.5))}}, types.NewFloat(2.5)},
		{&FuncCall{Name: "UPPER", Args: []Expr{lit(types.NewString("ab"))}}, types.NewString("AB")},
		{&FuncCall{Name: "LOWER", Args: []Expr{lit(types.NewString("AB"))}}, types.NewString("ab")},
		{&FuncCall{Name: "LENGTH", Args: []Expr{lit(types.NewString("abc"))}}, types.NewInt(3)},
		{&FuncCall{Name: "FLOOR", Args: []Expr{lit(types.NewFloat(1.7))}}, types.NewFloat(1)},
		{&FuncCall{Name: "CEIL", Args: []Expr{lit(types.NewFloat(1.2))}}, types.NewFloat(2)},
		{&FuncCall{Name: "COALESCE", Args: []Expr{lit(types.Null()), lit(types.NewInt(9))}}, types.NewInt(9)},
	}
	for _, c := range cases {
		v, err := Eval(c.f, env)
		if err != nil {
			t.Errorf("%s: %v", c.f, err)
			continue
		}
		if !types.Equal(v, c.want) {
			t.Errorf("%s = %v, want %v", c.f, v, c.want)
		}
	}
	if _, err := Eval(&FuncCall{Name: "NOPE", Args: nil}, env); err == nil {
		t.Error("unknown function succeeded")
	}
	if _, err := Eval(&FuncCall{Name: "SUM", Args: []Expr{lit(types.NewInt(1))}}, env); err == nil {
		t.Error("relational aggregate evaluated row-at-a-time")
	}
}

func TestMatchLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "a%c", true},
		{"abc", "a%b", false},
		{"aXbXc", "a%b%c", true},
		{"Hello", "hello", false}, // case-sensitive
	}
	for _, c := range cases {
		if got := MatchLike(c.s, c.p); got != c.want {
			t.Errorf("MatchLike(%q, %q) = %v", c.s, c.p, got)
		}
	}
}

func TestInExprScalar(t *testing.T) {
	env := &Env{}
	in := &InExpr{E: lit(types.NewInt(2)), List: []Expr{lit(types.NewInt(1)), lit(types.NewInt(2))}}
	if v, _ := Eval(in, env); !v.Truthy() {
		t.Error("2 IN (1,2)")
	}
	in.Neg = true
	if v, _ := Eval(in, env); v.Truthy() {
		t.Error("2 NOT IN (1,2)")
	}
	in = &InExpr{E: lit(types.Null()), List: []Expr{lit(types.NewInt(1))}}
	if v, _ := Eval(in, env); v.Truthy() {
		t.Error("NULL IN (...) must be false")
	}
}

func TestCloneIndependence(t *testing.T) {
	b, env, _ := pathEnv(t)
	orig := &BinaryExpr{Op: OpEq,
		L: ref(part("PS"), part("Length")), R: lit(types.NewInt(2))}
	clone := orig.Clone()
	if _, err := b.Bind(clone); err != nil {
		t.Fatal(err)
	}
	// The original must still contain a RawRef (unbound).
	if _, ok := orig.L.(*RawRef); !ok {
		t.Errorf("binding the clone mutated the original: %T", orig.L)
	}
	v, err := Eval(clone, env)
	if err != nil || !v.Truthy() {
		t.Errorf("clone eval: %v %v", v, err)
	}
}

func TestSplitJoinConjuncts(t *testing.T) {
	a := lit(types.NewBool(true))
	bb := lit(types.NewBool(false))
	c := lit(types.NewBool(true))
	e := &BinaryExpr{Op: OpAnd, L: &BinaryExpr{Op: OpAnd, L: a, R: bb}, R: c}
	parts := SplitConjuncts(e)
	if len(parts) != 3 {
		t.Fatalf("conjuncts = %d", len(parts))
	}
	re := JoinConjuncts(parts)
	if re.String() != e.String() {
		t.Errorf("rejoin mismatch: %s vs %s", re, e)
	}
	if JoinConjuncts(nil) != nil {
		t.Error("empty join must be nil")
	}
	if got := SplitConjuncts(nil); got != nil {
		t.Error("nil split must be nil")
	}
}

func TestQualifiers(t *testing.T) {
	e := &BinaryExpr{Op: OpAnd,
		L: &BinaryExpr{Op: OpEq, L: ref(part("U"), part("job")), R: lit(types.NewString("x"))},
		R: &BinaryExpr{Op: OpEq, L: ref(part("PS"), part("Length")), R: lit(types.NewInt(2))},
	}
	q := Qualifiers(e)
	if !q["u"] || !q["ps"] || len(q) != 2 {
		t.Errorf("qualifiers = %v", q)
	}
}

func TestAggState(t *testing.T) {
	sum := NewAggState("SUM")
	for _, v := range []types.Value{types.NewInt(1), types.Null(), types.NewInt(2)} {
		if err := sum.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	if got := sum.Result(); got.Kind != types.KindInt || got.I != 3 {
		t.Errorf("SUM = %v", got)
	}
	fsum := NewAggState("SUM")
	fsum.Add(types.NewInt(1))
	fsum.Add(types.NewFloat(0.5))
	if got := fsum.Result(); got.Kind != types.KindFloat || got.F != 1.5 {
		t.Errorf("mixed SUM = %v", got)
	}
	if got := NewAggState("SUM").Result(); !got.IsNull() {
		t.Errorf("empty SUM = %v", got)
	}
	if got := NewAggState("COUNT").Result(); got.I != 0 {
		t.Errorf("empty COUNT = %v", got)
	}
	avg := NewAggState("AVG")
	avg.Add(types.NewInt(1))
	avg.Add(types.NewInt(2))
	if got := avg.Result(); got.F != 1.5 {
		t.Errorf("AVG = %v", got)
	}
	mn := NewAggState("MIN")
	mn.Add(types.NewString("b"))
	mn.Add(types.NewString("a"))
	if got := mn.Result(); got.S != "a" {
		t.Errorf("MIN = %v", got)
	}
	d := NewDistinctAggState("COUNT")
	for _, v := range []types.Value{types.NewInt(1), types.NewInt(1), types.NewInt(2)} {
		d.Add(v)
	}
	if got := d.Result(); got.I != 2 {
		t.Errorf("COUNT DISTINCT = %v", got)
	}
	if err := NewAggState("SUM").Add(types.NewString("x")); err == nil {
		t.Error("SUM of string accepted")
	}
}

// Property: MatchLike with a pattern equal to the string (no wildcards)
// is equality; '%'+s+'%' always matches any superstring.
func TestMatchLikeProperties(t *testing.T) {
	sanitize := func(s string) string {
		return strings.Map(func(r rune) rune {
			if r == '%' || r == '_' {
				return 'x'
			}
			return r
		}, s)
	}
	prop := func(a, b string) bool {
		a, b = sanitize(a), sanitize(b)
		if !MatchLike(a, a) {
			return false
		}
		return MatchLike(b+a+b, "%"+a+"%")
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestParamEvaluation(t *testing.T) {
	env := &Env{Params: types.Row{types.NewInt(7), types.NewString("x")}}
	v, err := Eval(&Param{Idx: 0}, env)
	if err != nil || v.I != 7 {
		t.Fatalf("param 0: %v %v", v, err)
	}
	v, err = Eval(&Param{Idx: 1}, env)
	if err != nil || v.S != "x" {
		t.Fatalf("param 1: %v %v", v, err)
	}
	if _, err := Eval(&Param{Idx: 2}, env); err == nil {
		t.Error("missing param accepted")
	}
	// Params compose with comparisons and survive cloning/binding.
	e := &BinaryExpr{Op: OpEq, L: &Param{Idx: 0}, R: lit(types.NewInt(7))}
	clone := e.Clone()
	v, err = Eval(clone, env)
	if err != nil || !v.Truthy() {
		t.Fatalf("param comparison: %v %v", v, err)
	}
	if (&Param{Idx: 0}).String() != "?1" {
		t.Errorf("param display: %s", (&Param{Idx: 0}).String())
	}
}

// TestStringAndCloneAllNodes exercises every node's display form and deep
// copy. Displays feed EXPLAIN output and snapshot round trips, so they
// must be stable and parseable where the grammar covers them.
func TestStringAndCloneAllNodes(t *testing.T) {
	nodes := []struct {
		e    Expr
		want string
	}{
		{lit(types.NewString("it's")), "'it''s'"},
		{&ColumnRef{Qualifier: "t", Name: "c"}, "t.c"},
		{&ColumnRef{Name: "c"}, "c"},
		{&Param{Idx: 1}, "?2"},
		{&BinaryExpr{Op: OpAnd, L: lit(types.NewBool(true)), R: lit(types.NewBool(false))},
			"(true AND false)"},
		{&UnaryExpr{Op: OpNot, E: lit(types.NewBool(true))}, "(NOT true)"},
		{&UnaryExpr{Op: OpNeg, E: lit(types.NewInt(3))}, "(-3)"},
		{&InExpr{E: lit(types.NewInt(1)), List: []Expr{lit(types.NewInt(2))}, Neg: true},
			"(1 NOT IN (2))"},
		{&IsNullExpr{E: lit(types.NewInt(1)), Neg: true}, "(1 IS NOT NULL)"},
		{&FuncCall{Name: "COUNT", Star: true}, "COUNT(*)"},
		{&FuncCall{Name: "SUM", Args: []Expr{lit(types.NewInt(1))}, Distinct: true},
			"SUM(DISTINCT 1)"},
		{&CaseExpr{Whens: []CaseWhen{{Cond: lit(types.NewBool(true)), Then: lit(types.NewInt(1))}},
			Else: lit(types.NewInt(2))},
			"CASE WHEN true THEN 1 ELSE 2 END"},
		{ref(part("PS"), wild("Edges", 2), part("w")), "PS.Edges[2..*].w"},
		{ref(part("PS"), rangePart("Edges", 1, 3), part("w")), "PS.Edges[1..3].w"},
		{ref(part("PS"), idx("Vertexes", 0), part("n")), "PS.Vertexes[0].n"},
		{&PathValueRef{Alias: "PS"}, "PS"},
		{&PathProperty{Alias: "PS", Prop: PropLength}, "PS.Length"},
		{&PathProperty{Alias: "PS", Prop: PropPathString}, "PS.PathString"},
		{&PathVertexAttr{Alias: "PS", End: true, Attr: "name"}, "PS.EndVertex.name"},
		{&PathVertexAttr{Alias: "PS", Attr: "name"}, "PS.StartVertex.name"},
		{&PathEndpointID{Alias: "PS", Idx: 2, End: true}, "PS.Edges[2].EndVertex"},
		{&PathEndpointID{Alias: "PS", Idx: 0}, "PS.Edges[0].StartVertex"},
		{&PathElemAttr{Alias: "PS", Elem: ElemEdges, Rng: Rng{Start: 1, End: 1}, Attr: "w"},
			"PS.Edges[1].w"},
		{&PathElemAttr{Alias: "PS", Elem: ElemVertexes, Rng: Rng{All: true}, Attr: "n"},
			"PS.Vertexes.n"},
		{&PathElemAttr{Alias: "PS", Elem: ElemEdges, Rng: Rng{Start: 0, Wildcard: true}, Attr: "w"},
			"PS.Edges[0..*].w"},
	}
	for _, n := range nodes {
		if got := n.e.String(); got != n.want {
			t.Errorf("String: %q, want %q", got, n.want)
		}
		c := n.e.Clone()
		if c.String() != n.e.String() {
			t.Errorf("clone display differs: %q vs %q", c.String(), n.e.String())
		}
		// Clones are distinct values.
		if c == n.e {
			t.Errorf("clone aliases original: %s", n.e)
		}
	}
}

// Additional binder/validation corners.
func TestBinderCorners(t *testing.T) {
	b, env, _ := pathEnv(t)
	// Re-binding an already-bound tree re-resolves indices.
	e, err := b.Bind(ref(part("PS"), part("Length")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Bind(e); err != nil {
		t.Fatalf("rebind: %v", err)
	}
	// Unknown path variables fail on every bound node type.
	other := NewBinder(types.NewSchema())
	for _, n := range []Expr{
		&PathValueRef{Alias: "ZZ"},
		&PathProperty{Alias: "ZZ"},
		&PathVertexAttr{Alias: "ZZ", Attr: "x"},
		&PathEndpointID{Alias: "ZZ"},
		&PathElemAttr{Alias: "ZZ", Rng: Rng{Start: 0, End: 0}},
	} {
		if _, err := other.Bind(n); err == nil {
			t.Errorf("bound %T without path binding", n)
		}
	}
	// CASE arms are validated.
	bad := &CaseExpr{Whens: []CaseWhen{{
		Cond: &BinaryExpr{Op: OpAdd, L: ref(part("PS"), wild("Edges", 0), part("weight")), R: lit(types.NewInt(1))},
		Then: lit(types.NewInt(1)),
	}}}
	if _, err := b.Bind(bad); err == nil {
		t.Error("quantified ref inside CASE arithmetic accepted")
	}
	_ = env
}
