package grail

import (
	"math"
	"testing"

	"grfusion/internal/datagen"
	"grfusion/internal/graph"
)

func TestShortestPathMatchesDijkstra(t *testing.T) {
	d := datagen.Road(10, 10, 3)
	g := d.Build()
	w := map[int64]float64{}
	for _, e := range d.Edges {
		w[e.ID] = e.Weight
	}
	wf := func(pos int, e *graph.Edge, from, to *graph.Vertex) (float64, bool) { return w[e.ID], true }
	dr, err := Load(d, "g")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range datagen.ConnectedPairs(g, 6, 11) {
		want, err := graph.ShortestPath(g, g.Vertex(p.Src), g.Vertex(p.Dst), wf)
		if err != nil {
			t.Fatal(err)
		}
		got, ok, err := dr.ShortestPath(p.Src, p.Dst, -1)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || want == nil {
			t.Fatalf("sp(%v): ok=%v kernel=%v", p, ok, want)
		}
		if math.Abs(got-want.Cost) > 1e-9 {
			t.Errorf("sp(%v) = %g, kernel %g", p, got, want.Cost)
		}
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	// Two disconnected components.
	d := &datagen.Dataset{
		Directed: true,
		Vertices: []datagen.Vertex{{ID: 1}, {ID: 2}, {ID: 3}},
		Edges:    []datagen.Edge{{ID: 1, Src: 1, Dst: 2, Weight: 1}},
	}
	dr, err := Load(d, "u")
	if err != nil {
		t.Fatal(err)
	}
	_, ok, err := dr.ShortestPath(1, 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("unreachable vertex got a distance")
	}
	if !math.IsNaN(dr.Distance(3)) {
		t.Error("Distance of unreachable vertex not NaN")
	}
}

func TestShortestPathWithSelectivity(t *testing.T) {
	// Two routes; the cheap one is filtered out by the selectivity predicate.
	d := &datagen.Dataset{
		Directed: true,
		Vertices: []datagen.Vertex{{ID: 1}, {ID: 2}, {ID: 3}},
		Edges: []datagen.Edge{
			{ID: 1, Src: 1, Dst: 3, Weight: 1, Sel: 90}, // direct but high sel
			{ID: 2, Src: 1, Dst: 2, Weight: 2, Sel: 5},
			{ID: 3, Src: 2, Dst: 3, Weight: 2, Sel: 5},
		},
	}
	dr, err := Load(d, "s")
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := dr.ShortestPath(1, 3, -1)
	if err != nil || !ok || got != 1 {
		t.Fatalf("unfiltered: %g %v %v", got, ok, err)
	}
	got, ok, err = dr.ShortestPath(1, 3, 50)
	if err != nil || !ok || got != 4 {
		t.Fatalf("filtered: %g %v %v", got, ok, err)
	}
	_, ok, err = dr.ShortestPath(1, 3, 1)
	if err != nil || ok {
		t.Fatalf("over-filtered should be unreachable: %v %v", ok, err)
	}
}

func TestReachableMatchesKernel(t *testing.T) {
	d := datagen.Twitter(200, 3, 13)
	g := d.Build()
	dr, err := Load(d, "r")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range datagen.PairsAtDistance(g, 4, 8, 17) {
		ok, err := dr.Reachable(p.Src, p.Dst, 0, -1)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("pair %v not reachable via iterative SQL", p)
		}
		// Hop cap below the distance must fail.
		ok, err = dr.Reachable(p.Src, p.Dst, 3, -1)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("pair %v at distance 4 reachable within 3 hops", p)
		}
	}
	if ok, _ := dr.Reachable(5, 5, 0, -1); !ok {
		t.Error("self must be reachable")
	}
}

func TestUndirectedEmbeddingDoublesAdjacency(t *testing.T) {
	d := datagen.Road(4, 4, 9)
	dr, err := Load(d, "d")
	if err != nil {
		t.Fatal(err)
	}
	res, err := dr.Engine().Execute("SELECT COUNT(*) FROM d_e")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != int64(2*len(d.Edges)) {
		t.Errorf("adjacency rows: %d", res.Rows[0][0].I)
	}
}
