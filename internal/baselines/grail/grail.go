// Package grail implements the paper's Grail baseline: graph queries
// compiled to *procedural SQL* over a vanilla relational engine (Grail
// translates vertex-centric programs into iterative SQL driven by a
// stored-procedure loop; see §1 and §7 of the GRFusion paper).
//
// The driver below plays the stored-procedure interpreter: each traversal
// iteration is a set-at-a-time SQL statement against frontier/distance
// tables, and the loop, convergence test, and table swaps run host-side —
// the same work Grail's generated T-SQL performs inside the DBMS. The
// engine dialect has no INSERT…SELECT, so the driver ferries each
// iteration's result set into the next INSERT; this adds per-iteration
// constant overhead but does not change the asymptotic shape (one
// relational join + aggregation per frontier expansion, versus GRFusion's
// single in-memory Dijkstra).
package grail

import (
	"fmt"
	"math"
	"strings"

	"grfusion/internal/core"
	"grfusion/internal/datagen"
)

// Driver holds the relational embedding and scratch tables of one graph.
type Driver struct {
	eng      *core.Engine
	prefix   string
	directed bool
	vcount   int
}

// Load embeds the dataset into a dedicated engine (adjacency doubled for
// undirected graphs) and creates the iteration scratch tables.
func Load(d *datagen.Dataset, prefix string) (*Driver, error) {
	eng := core.New(core.Options{})
	dr := &Driver{eng: eng, prefix: prefix, directed: d.Directed, vcount: len(d.Vertices)}
	ddl := fmt.Sprintf(`
		CREATE TABLE %s_e (eid BIGINT PRIMARY KEY, src BIGINT, dst BIGINT, w DOUBLE, sel BIGINT);
		CREATE INDEX %s_e_src ON %s_e (src);
		CREATE TABLE %s_dist (vid BIGINT PRIMARY KEY, dist DOUBLE);
		CREATE TABLE %s_frontier (vid BIGINT PRIMARY KEY, dist DOUBLE);
	`, prefix, prefix, prefix, prefix, prefix)
	if _, err := eng.ExecuteScript(ddl); err != nil {
		return nil, err
	}
	var sb strings.Builder
	n := 0
	eid := int64(0)
	flush := func() error {
		if n == 0 {
			return nil
		}
		if _, err := eng.Execute(sb.String()); err != nil {
			return err
		}
		sb.Reset()
		n = 0
		return nil
	}
	add := func(e datagen.Edge, src, dst int64) error {
		if n == 0 {
			fmt.Fprintf(&sb, "INSERT INTO %s_e VALUES ", prefix)
		} else {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d, %d, %g, %d)", eid, src, dst, e.Weight, e.Sel)
		eid++
		n++
		if n >= 512 {
			return flush()
		}
		return nil
	}
	for _, e := range d.Edges {
		if err := add(e, e.Src, e.Dst); err != nil {
			return nil, err
		}
		if !d.Directed {
			if err := add(e, e.Dst, e.Src); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return dr, nil
}

// Engine exposes the baseline's engine.
func (dr *Driver) Engine() *core.Engine { return dr.eng }

func (dr *Driver) selPred(alias string, selPct int) string {
	if selPct < 0 {
		return ""
	}
	return fmt.Sprintf(" AND %s.sel < %d", alias, selPct)
}

// ShortestPath computes the single-pair shortest distance with the
// Bellman-Ford-style iterative SQL program Grail generates: each round
// joins the frontier with the edge table, aggregates candidate distances,
// and folds improvements back into the distance table; rounds repeat until
// the frontier empties (non-negative weights make this Dijkstra-like label
// correcting). Returns ok=false when dst is unreachable.
func (dr *Driver) ShortestPath(src, dst int64, selPct int) (float64, bool, error) {
	e := dr.eng
	p := dr.prefix
	reset := fmt.Sprintf("DELETE FROM %s_dist; DELETE FROM %s_frontier;", p, p)
	if _, err := e.ExecuteScript(reset); err != nil {
		return 0, false, err
	}
	seed := fmt.Sprintf("INSERT INTO %s_dist VALUES (%d, 0.0); INSERT INTO %s_frontier VALUES (%d, 0.0);",
		p, src, p, src)
	if _, err := e.ExecuteScript(seed); err != nil {
		return 0, false, err
	}
	relax := fmt.Sprintf(`
		SELECT e.dst, MIN(f.dist + e.w)
		FROM %s_frontier f, %s_e e
		WHERE f.vid = e.src%s
		GROUP BY e.dst`, p, p, dr.selPred("e", selPct))

	for round := 0; round < dr.vcount; round++ {
		cand, err := e.Execute(relax)
		if err != nil {
			return 0, false, err
		}
		if len(cand.Rows) == 0 {
			break
		}
		// Current distances of the candidate vertexes.
		distRes, err := e.Execute(fmt.Sprintf("SELECT vid, dist FROM %s_dist", p))
		if err != nil {
			return 0, false, err
		}
		cur := make(map[int64]float64, len(distRes.Rows))
		for _, r := range distRes.Rows {
			cur[r[0].I] = r[1].F
		}
		// Fold improvements into dist and build the next frontier.
		var updates, inserts, frontier []string
		for _, r := range cand.Rows {
			if r[1].IsNull() {
				continue
			}
			v, nd := r[0].I, r[1].AsFloat()
			old, seen := cur[v]
			if seen && old <= nd {
				continue
			}
			if seen {
				updates = append(updates, fmt.Sprintf(
					"UPDATE %s_dist SET dist = %g WHERE vid = %d", p, nd, v))
			} else {
				inserts = append(inserts, fmt.Sprintf("(%d, %g)", v, nd))
			}
			frontier = append(frontier, fmt.Sprintf("(%d, %g)", v, nd))
		}
		if _, err := e.Execute(fmt.Sprintf("DELETE FROM %s_frontier", p)); err != nil {
			return 0, false, err
		}
		if len(frontier) == 0 {
			break
		}
		if len(inserts) > 0 {
			if _, err := e.Execute(fmt.Sprintf("INSERT INTO %s_dist VALUES %s",
				p, strings.Join(inserts, ", "))); err != nil {
				return 0, false, err
			}
		}
		for _, u := range updates {
			if _, err := e.Execute(u); err != nil {
				return 0, false, err
			}
		}
		if _, err := e.Execute(fmt.Sprintf("INSERT INTO %s_frontier VALUES %s",
			p, strings.Join(frontier, ", "))); err != nil {
			return 0, false, err
		}
	}
	res, err := e.Execute(fmt.Sprintf("SELECT dist FROM %s_dist WHERE vid = %d", p, dst))
	if err != nil {
		return 0, false, err
	}
	if len(res.Rows) == 0 {
		return 0, false, nil
	}
	return res.Rows[0][0].AsFloat(), true, nil
}

// Reachable runs the BFS variant of the iterative program: unit distances
// and an early exit as soon as dst enters the distance table. maxHops <= 0
// means unbounded.
func (dr *Driver) Reachable(src, dst int64, maxHops, selPct int) (bool, error) {
	e := dr.eng
	p := dr.prefix
	if src == dst {
		return true, nil
	}
	if _, err := e.ExecuteScript(fmt.Sprintf(
		"DELETE FROM %s_dist; DELETE FROM %s_frontier;", p, p)); err != nil {
		return false, err
	}
	if _, err := e.ExecuteScript(fmt.Sprintf(
		"INSERT INTO %s_dist VALUES (%d, 0.0); INSERT INTO %s_frontier VALUES (%d, 0.0);",
		p, src, p, src)); err != nil {
		return false, err
	}
	expand := fmt.Sprintf(`
		SELECT DISTINCT e.dst FROM %s_frontier f, %s_e e
		WHERE f.vid = e.src%s`, p, p, dr.selPred("e", selPct))
	limit := maxHops
	if limit <= 0 {
		limit = dr.vcount
	}
	for hop := 1; hop <= limit; hop++ {
		cand, err := e.Execute(expand)
		if err != nil {
			return false, err
		}
		distRes, err := e.Execute(fmt.Sprintf("SELECT vid FROM %s_dist", p))
		if err != nil {
			return false, err
		}
		seen := make(map[int64]bool, len(distRes.Rows))
		for _, r := range distRes.Rows {
			seen[r[0].I] = true
		}
		var fresh []string
		found := false
		for _, r := range cand.Rows {
			v := r[0].I
			if seen[v] {
				continue
			}
			if v == dst {
				found = true
			}
			fresh = append(fresh, fmt.Sprintf("(%d, %d.0)", v, hop))
		}
		if _, err := e.Execute(fmt.Sprintf("DELETE FROM %s_frontier", p)); err != nil {
			return false, err
		}
		if len(fresh) == 0 {
			return false, nil
		}
		batch := strings.Join(fresh, ", ")
		if _, err := e.Execute(fmt.Sprintf("INSERT INTO %s_dist VALUES %s", p, batch)); err != nil {
			return false, err
		}
		if found {
			return true, nil
		}
		if _, err := e.Execute(fmt.Sprintf("INSERT INTO %s_frontier VALUES %s", p, batch)); err != nil {
			return false, err
		}
	}
	return false, nil
}

// Distance returns the recorded distance of v after a ShortestPath run
// (testing aid). NaN when absent.
func (dr *Driver) Distance(v int64) float64 {
	res, err := dr.eng.Execute(fmt.Sprintf("SELECT dist FROM %s_dist WHERE vid = %d", dr.prefix, v))
	if err != nil || len(res.Rows) == 0 {
		return math.NaN()
	}
	return res.Rows[0][0].AsFloat()
}
