package graphstore

import (
	"testing"

	"grfusion/internal/datagen"
	"grfusion/internal/graph"
	"grfusion/internal/types"
)

// stores returns both implementations loaded with the same dataset.
func stores(t *testing.T, d *datagen.Dataset) map[string]GraphDB {
	t.Helper()
	out := map[string]GraphDB{}
	for name, db := range map[string]GraphDB{
		"map":        New(d.Directed),
		"serialized": NewSerialized(d.Directed),
	} {
		if err := Load(db, d); err != nil {
			t.Fatal(err)
		}
		out[name] = db
	}
	return out
}

func TestLoadCountsAndProps(t *testing.T) {
	d := datagen.Protein(200, 4, 3)
	for name, db := range stores(t, d) {
		nv, ne := db.Counts()
		if nv != len(d.Vertices) || ne != len(d.Edges) {
			t.Errorf("%s: counts %d/%d", name, nv, ne)
		}
		p := db.EdgeProps(d.Edges[0].ID)
		if p["w"].AsFloat() != d.Edges[0].Weight || p["lbl"].S != d.Edges[0].Label {
			t.Errorf("%s: edge props %v", name, p)
		}
		vp := db.VertexProps(d.Vertices[5].ID)
		if vp["name"].S != d.Vertices[5].Name {
			t.Errorf("%s: vertex props %v", name, vp)
		}
	}
}

func TestStoreBasicErrors(t *testing.T) {
	for _, db := range []GraphDB{New(true), NewSerialized(true)} {
		if err := db.AddVertex(1, nil); err != nil {
			t.Fatal(err)
		}
		if err := db.AddVertex(1, nil); err == nil {
			t.Error("duplicate vertex accepted")
		}
		if err := db.AddEdge(1, 1, 99, nil); err == nil {
			t.Error("dangling edge accepted")
		}
		db.AddVertex(2, nil)
		if err := db.AddEdge(1, 1, 2, nil); err != nil {
			t.Fatal(err)
		}
		if err := db.AddEdge(1, 2, 1, nil); err == nil {
			t.Error("duplicate edge accepted")
		}
		if !db.RemoveEdge(1) || db.RemoveEdge(1) {
			t.Error("remove edge broken")
		}
		_, ne := db.Counts()
		if ne != 0 {
			t.Error("edge count after removal")
		}
	}
}

func TestNeighborsUndirectedBothWays(t *testing.T) {
	d := &datagen.Dataset{
		Name: "mini", Directed: false,
		Vertices: []datagen.Vertex{{ID: 1}, {ID: 2}},
		Edges:    []datagen.Edge{{ID: 7, Src: 1, Dst: 2, Weight: 1}},
	}
	for name, db := range stores(t, d) {
		var from2 []int64
		db.Neighbors(2, func(e, o int64) bool { from2 = append(from2, o); return true })
		if len(from2) != 1 || from2[0] != 1 {
			t.Errorf("%s: undirected reverse neighbors = %v", name, from2)
		}
	}
}

func TestReachableAgainstKernel(t *testing.T) {
	d := datagen.Twitter(300, 3, 9)
	g := d.Build()
	pairs := append(datagen.PairsAtDistance(g, 3, 10, 1), datagen.PairsAtDistance(g, 6, 10, 2)...)
	for name, db := range stores(t, d) {
		for _, p := range pairs {
			want := graph.Reachable(g, g.Vertex(p.Src), g.Vertex(p.Dst), 0)
			if got := Reachable(db, p.Src, p.Dst, 0, nil); got != want {
				t.Errorf("%s: reachable(%v) = %v, want %v", name, p, got, want)
			}
		}
		// Unreachable sanity: reversed twitter pairs are usually one-way,
		// so just check self and missing vertices.
		if !Reachable(db, pairs[0].Src, pairs[0].Src, 0, nil) {
			t.Errorf("%s: self not reachable", name)
		}
		if Reachable(db, pairs[0].Src, 1<<40, 0, nil) {
			t.Errorf("%s: missing vertex reachable", name)
		}
	}
}

func TestReachableHopLimitAndFilter(t *testing.T) {
	d := datagen.Road(12, 12, 4)
	g := d.Build()
	pairs := datagen.PairsAtDistance(g, 5, 5, 3)
	if len(pairs) == 0 {
		t.Skip("no pairs")
	}
	for name, db := range stores(t, d) {
		p := pairs[0]
		if Reachable(db, p.Src, p.Dst, 4, nil) {
			t.Errorf("%s: distance-5 pair reachable within 4 hops", name)
		}
		if !Reachable(db, p.Src, p.Dst, 5, nil) {
			t.Errorf("%s: distance-5 pair not reachable within 5 hops", name)
		}
		// A filter admitting nothing disconnects everything.
		if Reachable(db, p.Src, p.Dst, 0, func(Props) bool { return false }) {
			t.Errorf("%s: reachable through empty edge set", name)
		}
	}
}

func TestShortestPathAgainstKernel(t *testing.T) {
	d := datagen.Road(15, 15, 6)
	g := d.Build()
	w := map[int64]float64{}
	for _, e := range d.Edges {
		w[e.ID] = e.Weight
	}
	wf := func(pos int, e *graph.Edge, from, to *graph.Vertex) (float64, bool) { return w[e.ID], true }
	pairs := datagen.ConnectedPairs(g, 10, 5)
	for name, db := range stores(t, d) {
		for _, p := range pairs {
			want, err := graph.ShortestPath(g, g.Vertex(p.Src), g.Vertex(p.Dst), wf)
			if err != nil {
				t.Fatal(err)
			}
			cost, _, ok := ShortestPath(db, p.Src, p.Dst, "w", nil)
			if !ok || want == nil {
				t.Fatalf("%s: sp(%v) ok=%v kernel=%v", name, p, ok, want)
			}
			if diff := cost - want.Cost; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s: sp(%v) = %g, kernel %g", name, p, cost, want.Cost)
			}
		}
	}
}

func TestCountTrianglesBothStoresAgree(t *testing.T) {
	d := datagen.DBLP(10, 6, 8)
	ss := stores(t, d)
	a := CountTriangles(ss["map"], nil)
	b := CountTriangles(ss["serialized"], nil)
	if a != b {
		t.Fatalf("stores disagree: %d vs %d", a, b)
	}
	if a == 0 {
		t.Fatal("dblp communities must contain triangles")
	}
	// Selectivity monotonicity.
	half := CountTriangles(ss["map"], func(p Props) bool { return p["sel"].I < 50 })
	if half > a {
		t.Errorf("filtered count %d exceeds unfiltered %d", half, a)
	}
}

func TestCountTrianglesKnownGraph(t *testing.T) {
	// A single undirected triangle: expect 6 closed 3-walks.
	d := &datagen.Dataset{
		Directed: false,
		Vertices: []datagen.Vertex{{ID: 1}, {ID: 2}, {ID: 3}},
		Edges: []datagen.Edge{
			{ID: 1, Src: 1, Dst: 2, Weight: 1},
			{ID: 2, Src: 2, Dst: 3, Weight: 1},
			{ID: 3, Src: 3, Dst: 1, Weight: 1},
		},
	}
	for name, db := range stores(t, d) {
		if got := CountTriangles(db, nil); got != 6 {
			t.Errorf("%s: undirected triangle walks = %d, want 6", name, got)
		}
	}
	// Directed 3-cycle: expect 3.
	d.Directed = true
	dirStores := stores(t, d)
	for name, db := range dirStores {
		if got := CountTriangles(db, nil); got != 3 {
			t.Errorf("%s: directed triangle walks = %d, want 3", name, got)
		}
	}
}

func TestReextract(t *testing.T) {
	d := datagen.Protein(100, 3, 2)
	db, err := Reextract(d.Directed, d, false)
	if err != nil {
		t.Fatal(err)
	}
	nv, ne := db.Counts()
	if nv != len(d.Vertices) || ne != len(d.Edges) {
		t.Fatalf("reextract counts: %d %d", nv, ne)
	}
	sdb, err := Reextract(d.Directed, d, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sdb.(*SerializedStore); !ok {
		t.Fatal("serialized reextract returned wrong type")
	}
}

func TestSerializedPropsRoundTrip(t *testing.T) {
	p := Props{
		"i": types.NewInt(-42),
		"f": types.NewFloat(2.75),
		"s": types.NewString("héllo"),
		"b": types.NewBool(true),
		"n": types.Null(),
	}
	got := decodeProps(encodeProps(p))
	if len(got) != len(p) {
		t.Fatalf("lost keys: %v", got)
	}
	for k, v := range p {
		if !types.Equal(got[k], v) && !(v.IsNull() && got[k].IsNull()) {
			t.Errorf("key %s: %v != %v", k, got[k], v)
		}
	}
}
