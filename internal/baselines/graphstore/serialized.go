package graphstore

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"grfusion/internal/types"
)

// SerializedStore is the Titan-like property graph: vertex and edge
// records (properties AND adjacency lists) are kept serialized, as a
// key-value backend would hold them, and decoded on every access. Each hop
// of a traversal therefore pays a deserialization cost, which is the
// dominant per-hop overhead the paper observes for Titan.
type SerializedStore struct {
	directed bool
	// vprops / eprops hold serialized property bags.
	vprops map[int64][]byte
	eprops map[int64][]byte
	// adjacency holds each vertex's serialized adjacency record: a list of
	// (edgeID, otherVertex, isOut) entries.
	adjacency map[int64][]byte
	// endpoints holds each edge's serialized (src, dst) record.
	endpoints map[int64][]byte
}

// NewSerialized creates an empty serialization-based store.
func NewSerialized(directed bool) *SerializedStore {
	return &SerializedStore{
		directed:  directed,
		vprops:    make(map[int64][]byte),
		eprops:    make(map[int64][]byte),
		adjacency: make(map[int64][]byte),
		endpoints: make(map[int64][]byte),
	}
}

// Directed implements GraphDB.
func (s *SerializedStore) Directed() bool { return s.directed }

// HasVertex implements GraphDB.
func (s *SerializedStore) HasVertex(id int64) bool { _, ok := s.vprops[id]; return ok }

// VertexIDs implements GraphDB.
func (s *SerializedStore) VertexIDs() []int64 {
	out := make([]int64, 0, len(s.vprops))
	for id := range s.vprops {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddVertex implements GraphDB.
func (s *SerializedStore) AddVertex(id int64, p Props) error {
	if _, dup := s.vprops[id]; dup {
		return fmt.Errorf("graphstore: duplicate vertex %d", id)
	}
	s.vprops[id] = encodeProps(p)
	s.adjacency[id] = nil
	return nil
}

// AddEdge implements GraphDB.
func (s *SerializedStore) AddEdge(id, src, dst int64, p Props) error {
	if _, dup := s.eprops[id]; dup {
		return fmt.Errorf("graphstore: duplicate edge %d", id)
	}
	if _, ok := s.vprops[src]; !ok {
		return fmt.Errorf("graphstore: edge %d references missing vertex %d", id, src)
	}
	if _, ok := s.vprops[dst]; !ok {
		return fmt.Errorf("graphstore: edge %d references missing vertex %d", id, dst)
	}
	s.eprops[id] = encodeProps(p)
	var ep []byte
	ep = binary.AppendVarint(ep, src)
	ep = binary.AppendVarint(ep, dst)
	s.endpoints[id] = ep
	s.adjacency[src] = appendAdj(s.adjacency[src], id, dst, true)
	s.adjacency[dst] = appendAdj(s.adjacency[dst], id, src, false)
	return nil
}

// RemoveEdge implements GraphDB. The adjacency records of both endpoints
// are decoded, filtered, and re-encoded — the write amplification a
// serialize-everything backend pays.
func (s *SerializedStore) RemoveEdge(id int64) bool {
	ep, ok := s.endpoints[id]
	if !ok {
		return false
	}
	src, n := binary.Varint(ep)
	dst, _ := binary.Varint(ep[n:])
	delete(s.endpoints, id)
	delete(s.eprops, id)
	s.adjacency[src] = filterAdj(s.adjacency[src], id)
	s.adjacency[dst] = filterAdj(s.adjacency[dst], id)
	return true
}

// Neighbors implements GraphDB, decoding the adjacency record as it goes.
func (s *SerializedStore) Neighbors(id int64, fn func(edgeID, other int64) bool) {
	rec := s.adjacency[id]
	for len(rec) > 0 {
		edge, n := binary.Varint(rec)
		rec = rec[n:]
		other, n := binary.Varint(rec)
		rec = rec[n:]
		isOut := rec[0] == 1
		rec = rec[1:]
		if !isOut && (s.directed || other == id) {
			continue
		}
		if !fn(edge, other) {
			return
		}
	}
}

// VertexProps implements GraphDB (decodes on every call).
func (s *SerializedStore) VertexProps(id int64) Props { return decodeProps(s.vprops[id]) }

// EdgeProps implements GraphDB (decodes on every call).
func (s *SerializedStore) EdgeProps(id int64) Props { return decodeProps(s.eprops[id]) }

// Counts implements GraphDB.
func (s *SerializedStore) Counts() (int, int) { return len(s.vprops), len(s.eprops) }

func appendAdj(rec []byte, edge, other int64, out bool) []byte {
	rec = binary.AppendVarint(rec, edge)
	rec = binary.AppendVarint(rec, other)
	if out {
		rec = append(rec, 1)
	} else {
		rec = append(rec, 0)
	}
	return rec
}

func filterAdj(rec []byte, drop int64) []byte {
	var out []byte
	for len(rec) > 0 {
		edge, n := binary.Varint(rec)
		entryStart := rec
		rec = rec[n:]
		other, n2 := binary.Varint(rec)
		rec = rec[n2:]
		isOut := rec[0]
		rec = rec[1:]
		_ = other
		_ = isOut
		if edge == drop {
			continue
		}
		out = append(out, entryStart[:n+n2+1]...)
	}
	return out
}

// Property codec: repeated (key, kind, value) entries with varint lengths.

const (
	tagNull byte = iota
	tagBool
	tagInt
	tagFloat
	tagString
)

func encodeProps(p Props) []byte {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []byte
	for _, k := range keys {
		out = binary.AppendUvarint(out, uint64(len(k)))
		out = append(out, k...)
		v := p[k]
		switch v.Kind {
		case types.KindBool:
			out = append(out, tagBool)
			if v.B {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
		case types.KindInt:
			out = append(out, tagInt)
			out = binary.AppendVarint(out, v.I)
		case types.KindFloat:
			out = append(out, tagFloat)
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v.F))
		case types.KindString:
			out = append(out, tagString)
			out = binary.AppendUvarint(out, uint64(len(v.S)))
			out = append(out, v.S...)
		default:
			out = append(out, tagNull)
		}
	}
	return out
}

func decodeProps(rec []byte) Props {
	if rec == nil {
		return nil
	}
	out := make(Props)
	for len(rec) > 0 {
		klen, n := binary.Uvarint(rec)
		rec = rec[n:]
		key := string(rec[:klen])
		rec = rec[klen:]
		tag := rec[0]
		rec = rec[1:]
		switch tag {
		case tagBool:
			out[key] = types.NewBool(rec[0] == 1)
			rec = rec[1:]
		case tagInt:
			v, n := binary.Varint(rec)
			rec = rec[n:]
			out[key] = types.NewInt(v)
		case tagFloat:
			out[key] = types.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(rec)))
			rec = rec[8:]
		case tagString:
			slen, n := binary.Uvarint(rec)
			rec = rec[n:]
			out[key] = types.NewString(string(rec[:slen]))
			rec = rec[slen:]
		default:
			out[key] = types.Null()
		}
	}
	return out
}
