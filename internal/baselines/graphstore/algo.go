package graphstore

import (
	"container/heap"

	"grfusion/internal/datagen"
	"grfusion/internal/types"
)

// This file implements the query algorithms the specialized-store
// baselines run, written once over the GraphDB interface. Per-hop property
// access goes through EdgeProps — a map fetch for Store, a record decode
// for SerializedStore — which is precisely where the two stores differ.

// EdgeFilter admits an edge by its properties; nil admits every edge.
type EdgeFilter func(Props) bool

// Load populates a store from a generated dataset, copying every attribute
// into the store (the Native Graph-Core model owns its data).
func Load(db GraphDB, d *datagen.Dataset) error {
	for _, v := range d.Vertices {
		if err := db.AddVertex(v.ID, Props{"name": types.NewString(v.Name)}); err != nil {
			return err
		}
	}
	for _, e := range d.Edges {
		p := Props{
			"w":   types.NewFloat(e.Weight),
			"sel": types.NewInt(e.Sel),
			"lbl": types.NewString(e.Label),
		}
		if err := db.AddEdge(e.ID, e.Src, e.Dst, p); err != nil {
			return err
		}
	}
	return nil
}

// Reachable reports whether dst is reachable from src within maxHops
// (maxHops <= 0 for unbounded) through edges admitted by filter, using a
// visited-once BFS.
func Reachable(db GraphDB, src, dst int64, maxHops int, filter EdgeFilter) bool {
	if !db.HasVertex(src) || !db.HasVertex(dst) {
		return false
	}
	if src == dst {
		return true
	}
	type frontierItem struct {
		id    int64
		depth int
	}
	visited := map[int64]bool{src: true}
	queue := []frontierItem{{id: src}}
	found := false
	for len(queue) > 0 && !found {
		cur := queue[0]
		queue = queue[1:]
		if maxHops > 0 && cur.depth >= maxHops {
			continue
		}
		db.Neighbors(cur.id, func(edgeID, other int64) bool {
			if visited[other] {
				return true
			}
			if filter != nil && !filter(db.EdgeProps(edgeID)) {
				return true
			}
			if other == dst {
				found = true
				return false
			}
			visited[other] = true
			queue = append(queue, frontierItem{id: other, depth: cur.depth + 1})
			return true
		})
	}
	return found
}

type gsHeapItem struct {
	id   int64
	cost float64
	hops int
	seq  int
}

type gsHeap []gsHeapItem

func (h gsHeap) Len() int { return len(h) }
func (h gsHeap) Less(i, j int) bool {
	if h[i].cost != h[j].cost {
		return h[i].cost < h[j].cost
	}
	return h[i].seq < h[j].seq
}
func (h gsHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *gsHeap) Push(x any)   { *h = append(*h, x.(gsHeapItem)) }
func (h *gsHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// ShortestPath runs Dijkstra from src to dst over the weightKey edge
// property, returning the cost and hop count of the cheapest admitted
// path.
func ShortestPath(db GraphDB, src, dst int64, weightKey string, filter EdgeFilter) (cost float64, hops int, ok bool) {
	if !db.HasVertex(src) || !db.HasVertex(dst) {
		return 0, 0, false
	}
	settled := map[int64]bool{}
	h := &gsHeap{{id: src}}
	heap.Init(h)
	seq := 0
	for h.Len() > 0 {
		cur := heap.Pop(h).(gsHeapItem)
		if settled[cur.id] {
			continue
		}
		settled[cur.id] = true
		if cur.id == dst {
			return cur.cost, cur.hops, true
		}
		db.Neighbors(cur.id, func(edgeID, other int64) bool {
			if settled[other] {
				return true
			}
			props := db.EdgeProps(edgeID)
			if filter != nil && !filter(props) {
				return true
			}
			w := 1.0
			if v, found := props[weightKey]; found && v.IsNumeric() {
				w = v.AsFloat()
			}
			if w < 0 {
				return true
			}
			seq++
			heap.Push(h, gsHeapItem{id: other, cost: cur.cost + w, hops: cur.hops + 1, seq: seq})
			return true
		})
	}
	return 0, 0, false
}

// CountTriangles counts closed length-3 paths whose three edges are each
// admitted by filter, enumerating simple 2-paths from every vertex and
// checking the closing edge — the same per-path semantics GRFusion's
// cycle-closure query uses, so counts are directly comparable.
func CountTriangles(db GraphDB, filter EdgeFilter) int {
	count := 0
	admit := func(edgeID int64) bool {
		return filter == nil || filter(db.EdgeProps(edgeID))
	}
	for _, v0 := range db.VertexIDs() {
		db.Neighbors(v0, func(e0, v1 int64) bool {
			if v1 == v0 || !admit(e0) {
				return true
			}
			db.Neighbors(v1, func(e1, v2 int64) bool {
				if v2 == v0 || v2 == v1 || !admit(e1) {
					return true
				}
				db.Neighbors(v2, func(e2, v3 int64) bool {
					if v3 != v0 || e2 == e1 || e2 == e0 {
						return true
					}
					if admit(e2) {
						count++
					}
					return true
				})
				return true
			})
			return true
		})
	}
	return count
}

// Reextract rebuilds a store from its relational source dataset, the
// maintenance story of the Native Graph-Core approach: any update to the
// source tables invalidates the extracted graph, and Figure 1(b)'s
// extraction layer must run again. Fig. 11 measures this against
// GRFusion's incremental maintenance.
func Reextract(directed bool, d *datagen.Dataset, serialized bool) (GraphDB, error) {
	var db GraphDB
	if serialized {
		db = NewSerialized(directed)
	} else {
		db = New(directed)
	}
	if err := Load(db, d); err != nil {
		return nil, err
	}
	return db, nil
}
