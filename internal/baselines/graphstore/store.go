// Package graphstore implements standalone in-memory property-graph
// databases standing in for the specialized graph systems the paper
// compares against (Neo4j and Titan, §7). Both follow the Native
// Graph-Core architecture of Figure 1(b): they own their data — vertex and
// edge attributes live inside the store, not in relational tuples — so
// keeping them in sync with an RDBMS requires re-extraction (the cost
// Fig. 11 measures).
//
// Store keeps properties in per-element maps (a Neo4j-like native layout);
// SerializedStore keeps properties and adjacency serialized per element
// and decodes them on every access (a Titan-like layout over a key-value
// backend). The paper attributes GRFusion's wins over these systems to
// exactly such "implementation factors" — per-hop property boxing and
// deserialization versus raw tuple pointers.
package graphstore

import (
	"fmt"
	"sort"

	"grfusion/internal/types"
)

// Props is a property bag for one vertex or edge.
type Props map[string]types.Value

// GraphDB is the store interface the shared traversal algorithms run over.
type GraphDB interface {
	// Directed reports the graph's edge semantics.
	Directed() bool
	// HasVertex reports whether the vertex exists.
	HasVertex(id int64) bool
	// VertexIDs returns all vertex ids in ascending order.
	VertexIDs() []int64
	// Neighbors enumerates the traversable (edge, other endpoint) pairs of
	// a vertex until fn returns false.
	Neighbors(id int64, fn func(edgeID, other int64) bool)
	// VertexProps returns a vertex's properties (decoded view).
	VertexProps(id int64) Props
	// EdgeProps returns an edge's properties (decoded view).
	EdgeProps(id int64) Props
	// AddVertex inserts a vertex.
	AddVertex(id int64, p Props) error
	// AddEdge inserts an edge between existing vertexes.
	AddEdge(id, src, dst int64, p Props) error
	// RemoveEdge deletes an edge, reporting whether it existed.
	RemoveEdge(id int64) bool
	// Counts returns the vertex and edge counts.
	Counts() (vertices, edges int)
}

// --- Map-based store (Neo4j-like) ------------------------------------------

type mapVertex struct {
	props Props
	out   []adj
	in    []adj
}

type adj struct {
	edge  int64
	other int64
}

type mapEdge struct {
	src, dst int64
	props    Props
}

// Store is the map-based property graph.
type Store struct {
	directed bool
	vertices map[int64]*mapVertex
	edges    map[int64]*mapEdge
}

// New creates an empty map-based store.
func New(directed bool) *Store {
	return &Store{
		directed: directed,
		vertices: make(map[int64]*mapVertex),
		edges:    make(map[int64]*mapEdge),
	}
}

// Directed implements GraphDB.
func (s *Store) Directed() bool { return s.directed }

// HasVertex implements GraphDB.
func (s *Store) HasVertex(id int64) bool { _, ok := s.vertices[id]; return ok }

// VertexIDs implements GraphDB.
func (s *Store) VertexIDs() []int64 {
	out := make([]int64, 0, len(s.vertices))
	for id := range s.vertices {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddVertex implements GraphDB.
func (s *Store) AddVertex(id int64, p Props) error {
	if _, dup := s.vertices[id]; dup {
		return fmt.Errorf("graphstore: duplicate vertex %d", id)
	}
	s.vertices[id] = &mapVertex{props: cloneProps(p)}
	return nil
}

// AddEdge implements GraphDB.
func (s *Store) AddEdge(id, src, dst int64, p Props) error {
	if _, dup := s.edges[id]; dup {
		return fmt.Errorf("graphstore: duplicate edge %d", id)
	}
	sv, ok := s.vertices[src]
	if !ok {
		return fmt.Errorf("graphstore: edge %d references missing vertex %d", id, src)
	}
	dv, ok := s.vertices[dst]
	if !ok {
		return fmt.Errorf("graphstore: edge %d references missing vertex %d", id, dst)
	}
	s.edges[id] = &mapEdge{src: src, dst: dst, props: cloneProps(p)}
	sv.out = append(sv.out, adj{edge: id, other: dst})
	dv.in = append(dv.in, adj{edge: id, other: src})
	return nil
}

// RemoveEdge implements GraphDB.
func (s *Store) RemoveEdge(id int64) bool {
	e, ok := s.edges[id]
	if !ok {
		return false
	}
	delete(s.edges, id)
	sv := s.vertices[e.src]
	sv.out = removeAdj(sv.out, id)
	dv := s.vertices[e.dst]
	dv.in = removeAdj(dv.in, id)
	return true
}

func removeAdj(list []adj, edge int64) []adj {
	for i := range list {
		if list[i].edge == edge {
			copy(list[i:], list[i+1:])
			return list[:len(list)-1]
		}
	}
	return list
}

// Neighbors implements GraphDB.
func (s *Store) Neighbors(id int64, fn func(edgeID, other int64) bool) {
	v, ok := s.vertices[id]
	if !ok {
		return
	}
	for _, a := range v.out {
		if !fn(a.edge, a.other) {
			return
		}
	}
	if s.directed {
		return
	}
	for _, a := range v.in {
		if a.other == id {
			continue // self-loop already offered
		}
		if !fn(a.edge, a.other) {
			return
		}
	}
}

// VertexProps implements GraphDB.
func (s *Store) VertexProps(id int64) Props {
	if v, ok := s.vertices[id]; ok {
		return v.props
	}
	return nil
}

// EdgeProps implements GraphDB.
func (s *Store) EdgeProps(id int64) Props {
	if e, ok := s.edges[id]; ok {
		return e.props
	}
	return nil
}

// Counts implements GraphDB.
func (s *Store) Counts() (int, int) { return len(s.vertices), len(s.edges) }

func cloneProps(p Props) Props {
	out := make(Props, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}
