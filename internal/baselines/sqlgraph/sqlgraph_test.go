package sqlgraph

import (
	"strings"
	"testing"

	"grfusion/internal/baselines/graphstore"
	"grfusion/internal/datagen"
)

func TestLoadEmbedsGraph(t *testing.T) {
	d := datagen.Protein(120, 3, 5)
	s, err := Load(d, "g", Pipelined, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Engine().Execute("SELECT COUNT(*) FROM g_v")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != int64(len(d.Vertices)) {
		t.Errorf("vertices: %d", res.Rows[0][0].I)
	}
	res, err = s.Engine().Execute("SELECT COUNT(*) FROM g_e")
	if err != nil {
		t.Fatal(err)
	}
	// Undirected embedding doubles the adjacency rows.
	if res.Rows[0][0].I != int64(2*len(d.Edges)) {
		t.Errorf("adjacency rows: %d, want %d", res.Rows[0][0].I, 2*len(d.Edges))
	}
}

func TestReachabilityQueryShape(t *testing.T) {
	d := datagen.Road(4, 4, 1)
	s, err := Load(d, "r", Pipelined, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := s.ReachabilityQuery(1, 5, 3, 25)
	// One relation instance per hop — the paper's join-per-edge shape.
	if strings.Count(q, "r_e e") != 3 {
		t.Errorf("query joins: %s", q)
	}
	if !strings.Contains(q, "e0.sel < 25") || !strings.Contains(q, "e2.sel < 25") {
		t.Errorf("selectivity predicates missing: %s", q)
	}
	if !strings.Contains(q, "LIMIT 1") {
		t.Errorf("no LIMIT: %s", q)
	}
	q = s.ReachabilityQuery(1, 5, 2, -1)
	if strings.Contains(q, "sel <") {
		t.Errorf("unexpected selectivity predicate: %s", q)
	}
}

func TestReachableMatchesKernel(t *testing.T) {
	d := datagen.Road(8, 8, 2)
	g := d.Build()
	s, err := Load(d, "r", Pipelined, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, dist := range []int{2, 4} {
		pairs := datagen.PairsAtDistance(g, dist, 5, 3)
		for _, p := range pairs {
			got, err := s.Reachable(p.Src, p.Dst, dist, -1)
			if err != nil {
				t.Fatal(err)
			}
			if !got {
				t.Errorf("pair %v at distance %d not found by %d-way join", p, dist, dist)
			}
		}
	}
	// Exact-length semantics: a distance-4 pair has no length-3 walk of
	// odd/even mismatch... walks can be longer than the distance only in
	// steps of 2 on undirected graphs, so length 3 for a distance-4 pair
	// must fail.
	pairs := datagen.PairsAtDistance(g, 4, 3, 7)
	for _, p := range pairs {
		got, err := s.Reachable(p.Src, p.Dst, 3, -1)
		if err != nil {
			t.Fatal(err)
		}
		if got {
			t.Errorf("distance-4 pair %v matched a 3-hop walk", p)
		}
	}
}

func TestTrianglesMatchGraphStore(t *testing.T) {
	d := datagen.DBLP(6, 6, 4)
	s, err := Load(d, "t", Pipelined, 0)
	if err != nil {
		t.Fatal(err)
	}
	gs := graphstore.New(d.Directed)
	if err := graphstore.Load(gs, d); err != nil {
		t.Fatal(err)
	}
	for _, sel := range []int{-1, 50, 10} {
		want := graphstore.CountTriangles(gs, selFilter(sel))
		got, err := s.CountTriangles(sel)
		if err != nil {
			t.Fatal(err)
		}
		if got != int64(want) {
			t.Errorf("sel=%d: sqlgraph %d, graphstore %d", sel, got, want)
		}
	}
}

func selFilter(sel int) graphstore.EdgeFilter {
	if sel < 0 {
		return nil
	}
	return func(p graphstore.Props) bool { return p["sel"].I < int64(sel) }
}

func TestMaterializedModeAborts(t *testing.T) {
	// A dense graph with a tiny temp budget: the materialized multi-join
	// must trip the intermediate-memory limit (the paper's Twitter
	// failure), while pipelined mode with LIMIT 1 survives.
	d := datagen.Protein(200, 6, 6)
	g := d.Build()
	pairs := datagen.PairsAtDistance(g, 4, 1, 1)
	if len(pairs) == 0 {
		t.Skip("no pairs")
	}
	p := pairs[0]
	mat, err := Load(d, "m", Materialized, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mat.Reachable(p.Src, p.Dst, 4, -1); err == nil ||
		!strings.Contains(err.Error(), "memory limit") {
		t.Errorf("materialized mode did not abort: %v", err)
	}
	// Pipelined mode still buffers each hash join's build side (the edge
	// table), so give it an unconstrained budget; the contrast under test
	// is the materialized intermediate results, not the build tables.
	pipe, err := Load(d, "p", Pipelined, 0)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := pipe.Reachable(p.Src, p.Dst, 4, -1)
	if err != nil || !ok {
		t.Errorf("pipelined mode failed: ok=%v err=%v", ok, err)
	}
}

func TestReachableZeroHops(t *testing.T) {
	d := datagen.Road(3, 3, 1)
	s, err := Load(d, "z", Pipelined, 0)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := s.Reachable(1, 1, 0, -1)
	if err != nil || !ok {
		t.Errorf("self reachability: %v %v", ok, err)
	}
	ok, err = s.Reachable(1, 2, 0, -1)
	if err != nil || ok {
		t.Errorf("zero hops to other: %v %v", ok, err)
	}
}
