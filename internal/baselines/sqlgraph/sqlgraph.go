// Package sqlgraph implements the paper's Native Relational-Core baseline
// (SQLGraph, Figure 1(a)): the graph is embedded into plain relational
// tables inside a vanilla relational engine, and every graph query is
// translated into SQL whose traversal steps become relational self-joins —
// one join per hop. No engine internals are touched.
//
// The baseline runs on the same relational engine as GRFusion but with
// VoltDB's materialize-per-fragment execution model enabled
// (plan.Options.MaterializeJoins), which is what makes deep traversals
// accumulate huge intermediate temp tables and abort on skewed graphs
// (§7.2's Twitter observation). A Pipelined mode is also provided,
// modeling the paper's fallback run on a pipelining disk RDBMS.
package sqlgraph

import (
	"fmt"
	"strings"

	"grfusion/internal/core"
	"grfusion/internal/datagen"
	"grfusion/internal/plan"
)

// Mode selects the execution model of the underlying relational engine.
type Mode uint8

// Execution modes.
const (
	// Materialized reproduces VoltDB: every join result lands in a temp
	// table charged against the engine's intermediate-memory budget.
	Materialized Mode = iota
	// Pipelined streams rows between joins (the commercial disk-RDBMS
	// fallback of §7.2) — it does not abort on memory, it just keeps
	// enumerating walks.
	Pipelined
)

// Store is a graph embedded into relational tables.
type Store struct {
	eng      *core.Engine
	prefix   string
	directed bool
}

// Load embeds the dataset into fresh vertex/edge tables inside a dedicated
// engine instance. Undirected graphs are embedded with one adjacency row
// per direction, the standard relational encoding. memLimit bounds the
// engine's intermediate-result memory (0 = unlimited).
func Load(d *datagen.Dataset, prefix string, mode Mode, memLimit int64) (*Store, error) {
	eng := core.New(core.Options{
		MemLimit: memLimit,
		Plan:     plan.Options{MaterializeJoins: mode == Materialized},
	})
	s := &Store{eng: eng, prefix: prefix, directed: d.Directed}
	ddl := fmt.Sprintf(`
		CREATE TABLE %s_v (vid BIGINT PRIMARY KEY, name VARCHAR);
		CREATE TABLE %s_e (eid BIGINT PRIMARY KEY, src BIGINT, dst BIGINT, w DOUBLE, sel BIGINT, lbl VARCHAR);
		CREATE INDEX %s_e_src ON %s_e (src);
	`, prefix, prefix, prefix, prefix)
	if _, err := eng.ExecuteScript(ddl); err != nil {
		return nil, err
	}
	var sb strings.Builder
	flushEvery := 512
	n := 0
	flush := func() error {
		if n == 0 {
			return nil
		}
		if _, err := eng.Execute(sb.String()); err != nil {
			return err
		}
		sb.Reset()
		n = 0
		return nil
	}
	for _, v := range d.Vertices {
		if n == 0 {
			fmt.Fprintf(&sb, "INSERT INTO %s_v VALUES ", prefix)
		} else {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, '%s')", v.ID, v.Name)
		n++
		if n >= flushEvery {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	nextEID := int64(0)
	addEdge := func(e datagen.Edge, src, dst int64) {
		if n == 0 {
			fmt.Fprintf(&sb, "INSERT INTO %s_e VALUES ", prefix)
		} else {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d, %d, %g, %d, '%s')", nextEID, src, dst, e.Weight, e.Sel, e.Label)
		nextEID++
		n++
	}
	for _, e := range d.Edges {
		addEdge(e, e.Src, e.Dst)
		if n >= flushEvery {
			if err := flush(); err != nil {
				return nil, err
			}
		}
		if !d.Directed {
			addEdge(e, e.Dst, e.Src)
			if n >= flushEvery {
				if err := flush(); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return s, nil
}

// Engine exposes the baseline's engine (tests inspect it).
func (s *Store) Engine() *core.Engine { return s.eng }

// ReachabilityQuery renders the SQL translation of an exact-length
// reachability query: hops self-joins of the edge table. selPct < 0 omits
// the selectivity predicate; otherwise each hop filters `sel < selPct`.
func (s *Store) ReachabilityQuery(src, dst int64, hops, selPct int) string {
	var from, where []string
	for i := 0; i < hops; i++ {
		from = append(from, fmt.Sprintf("%s_e e%d", s.prefix, i))
		if i > 0 {
			where = append(where, fmt.Sprintf("e%d.dst = e%d.src", i-1, i))
		}
		if selPct >= 0 {
			where = append(where, fmt.Sprintf("e%d.sel < %d", i, selPct))
		}
	}
	where = append(where, fmt.Sprintf("e0.src = %d", src))
	where = append(where, fmt.Sprintf("e%d.dst = %d", hops-1, dst))
	return fmt.Sprintf("SELECT 1 FROM %s WHERE %s LIMIT 1",
		strings.Join(from, ", "), strings.Join(where, " AND "))
}

// Reachable runs the translated reachability query. It reports the
// traversal result, or an error when the engine aborts (e.g. the
// intermediate-memory limit trips, the paper's Twitter failure mode).
func (s *Store) Reachable(src, dst int64, hops, selPct int) (bool, error) {
	if hops < 1 {
		return src == dst, nil
	}
	res, err := s.eng.Execute(s.ReachabilityQuery(src, dst, hops, selPct))
	if err != nil {
		return false, err
	}
	return len(res.Rows) > 0, nil
}

// TriangleQuery renders the SQL translation of the triangle-counting
// pattern (Listing 4's shape): three self-joins closing a cycle.
func (s *Store) TriangleQuery(selPct int) string {
	where := []string{
		"e0.dst = e1.src", "e1.dst = e2.src", "e2.dst = e0.src",
		"e1.eid <> e0.eid", "e2.eid <> e1.eid", "e2.eid <> e0.eid",
		"e1.src <> e0.src", "e2.src <> e0.src", // simple interior
	}
	if selPct >= 0 {
		for i := 0; i < 3; i++ {
			where = append(where, fmt.Sprintf("e%d.sel < %d", i, selPct))
		}
	}
	return fmt.Sprintf("SELECT COUNT(*) FROM %s_e e0, %s_e e1, %s_e e2 WHERE %s",
		s.prefix, s.prefix, s.prefix, strings.Join(where, " AND "))
}

// CountTriangles runs the translated triangle query and returns the closed
// length-3 path count (the same multiplicity semantics as GRFusion's
// cycle-closure query and the graph stores' CountTriangles).
func (s *Store) CountTriangles(selPct int) (int64, error) {
	res, err := s.eng.Execute(s.TriangleQuery(selPct))
	if err != nil {
		return 0, err
	}
	return res.Rows[0][0].I, nil
}
