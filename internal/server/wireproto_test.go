package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"grfusion/internal/core"
	"grfusion/internal/faultnet"
	"grfusion/internal/types"
	"grfusion/internal/wire"
)

// --- negotiation matrix -------------------------------------------------

func TestNegotiationBinaryByDefault(t *testing.T) {
	_, c := startServer(t)
	if !c.Binary() {
		t.Fatal("auto-negotiated client against a binary-capable server should speak binary")
	}
}

func TestNegotiationJSONClientBinaryServer(t *testing.T) {
	srv, _ := startServer(t)
	c, err := DialWith(srv.Addr().String(), Options{Protocol: ProtoJSON})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Binary() {
		t.Fatal("ProtoJSON client negotiated binary")
	}
	if _, err := c.Exec(`CREATE TABLE J (a BIGINT)`); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec(`SELECT COUNT(*) FROM J`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("JSON query on binary server: %+v %v", res, err)
	}
}

// fakeJSONServer is a minimal legacy JSON-lines-only server: it answers
// non-JSON lines (like the binary hello) with a parse-error response and
// {"query": ...} lines with a canned result.
func fakeJSONServer(t *testing.T) net.Addr {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				for sc.Scan() {
					var req Request
					var resp Response
					if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
						resp = Response{Error: fmt.Sprintf("bad request: %v", err)}
					} else {
						resp = Response{Columns: []string{"x"}, Rows: [][]any{{json.Number("7")}}}
					}
					b, _ := json.Marshal(&resp)
					conn.Write(append(b, '\n'))
				}
			}(conn)
		}
	}()
	return ln.Addr()
}

func TestNegotiationBinaryClientJSONServer(t *testing.T) {
	addr := fakeJSONServer(t)

	// Auto mode downgrades: the hello comes back as a parse error, which
	// the client consumes before serving requests over JSON-lines.
	c, err := DialWith(addr.String(), Options{ConnectTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("auto dial against JSON server: %v", err)
	}
	defer c.Close()
	if c.Binary() {
		t.Fatal("negotiated binary against a JSON-only server")
	}
	res, err := c.Exec(`SELECT 1`)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].I != 7 {
		t.Fatalf("downgraded query: %+v %v", res, err)
	}

	// Strict binary mode fails with the typed error.
	if _, err := DialWith(addr.String(), Options{Protocol: ProtoBinary, ConnectTimeout: 5 * time.Second}); !errors.Is(err, ErrBinaryUnsupported) {
		t.Fatalf("ProtoBinary against JSON server: %v, want ErrBinaryUnsupported", err)
	}
}

func TestNegotiationGarbageAfterG(t *testing.T) {
	srv, _ := startServer(t)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A first byte of 'G' promises the binary hello; garbage after it gets
	// the one diagnostic an unknown peer might parse, then a close.
	if _, err := conn.Write([]byte("GOPHER\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf[:n]), "unrecognized protocol") {
		t.Fatalf("response: %s", buf[:n])
	}
}

func TestNegotiationMidHandshakeDisconnect(t *testing.T) {
	srv, healthy := startServer(t)

	// A peer that dies three bytes into the hello must not wedge the
	// server.
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("GRW"))
	conn.Close()

	// And a server that dies mid-handshake must surface a clean typed
	// error from the client's dial, not a hang or panic.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err == nil {
			c.Close() // slam the door before answering the hello
		}
	}()
	if _, err := DialWith(ln.Addr().String(), Options{ConnectTimeout: 5 * time.Second}); err == nil ||
		!strings.Contains(err.Error(), "handshake") {
		t.Fatalf("dial against mid-handshake close: %v, want handshake error", err)
	}

	// The real server is still fine.
	if _, err := healthy.Exec(`SELECT 1 WHERE 1 = 0`); err != nil {
		t.Fatalf("server unhealthy after handshake abuse: %v", err)
	}
}

// --- satellite 1: one buffered write per request ------------------------

// countingConn counts Write calls: the regression guard for the client's
// once-unbuffered JSON encoder (every request must cost one write, and a
// pipeline flush exactly one for the whole batch).
type countingConn struct {
	net.Conn
	mu     sync.Mutex
	writes int
}

func (c *countingConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.writes++
	c.mu.Unlock()
	return c.Conn.Write(p)
}

func (c *countingConn) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes
}

func dialCounting(t *testing.T, addr string, opts Options) (*Client, *countingConn) {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	cc := &countingConn{Conn: raw}
	c, err := NewClientConn(cc, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, cc
}

func TestClientOneWritePerRequest(t *testing.T) {
	srv, admin := startServer(t)
	if _, err := admin.Exec(`CREATE TABLE W (a BIGINT)`); err != nil {
		t.Fatal(err)
	}
	for _, proto := range []string{ProtoJSON, ProtoBinary} {
		t.Run(proto, func(t *testing.T) {
			c, cc := dialCounting(t, srv.Addr().String(), Options{Protocol: proto})
			base := cc.count() // handshake writes (binary: the hello)
			const reqs = 5
			for i := 0; i < reqs; i++ {
				if _, err := c.Exec(`SELECT COUNT(*) FROM W`); err != nil {
					t.Fatal(err)
				}
			}
			if got := cc.count() - base; got != reqs {
				t.Fatalf("%d requests cost %d writes, want exactly %d (buffered writer regression)",
					reqs, got, reqs)
			}
		})
	}
}

func TestPipelineOneWritePerBatch(t *testing.T) {
	srv, admin := startServer(t)
	if _, err := admin.Exec(`CREATE TABLE PW (a BIGINT)`); err != nil {
		t.Fatal(err)
	}
	for _, proto := range []string{ProtoJSON, ProtoBinary} {
		t.Run(proto, func(t *testing.T) {
			c, cc := dialCounting(t, srv.Addr().String(), Options{Protocol: proto})
			p := c.Pipeline()
			for i := 0; i < 10; i++ {
				p.Query(`SELECT COUNT(*) FROM PW`)
			}
			base := cc.count()
			results, err := p.Flush()
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != 10 {
				t.Fatalf("got %d results", len(results))
			}
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("pipelined query %d: %v", i, r.Err)
				}
			}
			if got := cc.count() - base; got != 1 {
				t.Fatalf("pipeline of 10 cost %d writes, want exactly 1", got)
			}
		})
	}
}

// --- pipelining semantics ----------------------------------------------

func TestPipelineOrderedWithErrors(t *testing.T) {
	_, c := startServer(t)
	if _, err := c.Exec(`CREATE TABLE P (a BIGINT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	p := c.Pipeline()
	p.Query(`INSERT INTO P VALUES (1)`)
	p.Query(`INSERT INTO P VALUES (1)`) // duplicate key: fails
	p.Query(`INSERT INTO P VALUES (2)`) // must still execute, in order
	p.Query(`SELECT a FROM P ORDER BY a`)
	results, err := p.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Err != nil || results[0].Res.Affected != 1 {
		t.Fatalf("first insert: %+v", results[0])
	}
	var se *ServerError
	if !errors.As(results[1].Err, &se) {
		t.Fatalf("duplicate insert: %v, want ServerError", results[1].Err)
	}
	if results[2].Err != nil {
		t.Fatalf("post-error insert: %v", results[2].Err)
	}
	sel := results[3]
	if sel.Err != nil || len(sel.Res.Rows) != 2 ||
		sel.Res.Rows[0][0].I != 1 || sel.Res.Rows[1][0].I != 2 {
		t.Fatalf("pipelined select: %+v %v", sel.Res, sel.Err)
	}
	// The pipeline is reusable and the connection is healthy.
	if _, err := c.Exec(`SELECT 1 WHERE 1 = 0`); err != nil {
		t.Fatal(err)
	}
}

// --- prepared statements over the wire ---------------------------------

func TestPreparedOverWire(t *testing.T) {
	_, c := startServer(t)
	for _, q := range []string{
		`CREATE TABLE PS (id BIGINT PRIMARY KEY, name VARCHAR)`,
	} {
		if _, err := c.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	ins, err := c.Prepare(`INSERT INTO PS VALUES (?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	if ins.NumParams() != 2 {
		t.Fatalf("nparams = %d", ins.NumParams())
	}
	for i := 1; i <= 20; i++ {
		if _, err := ins.Exec(types.NewInt(int64(i)), types.NewString(fmt.Sprintf("n%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	sel, err := c.Prepare(`SELECT name FROM PS WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if got := sel.Columns(); len(got) != 1 || got[0] != "name" {
		t.Fatalf("columns: %v", got)
	}
	res, err := sel.Exec(types.NewInt(7))
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].S != "n7" {
		t.Fatalf("prepared select: %+v %v", res, err)
	}
	// Pipelined prepared executions: many lookups, one round trip.
	p := c.Pipeline()
	for i := 1; i <= 10; i++ {
		p.ExecStmt(sel, types.NewInt(int64(i)))
	}
	results, err := p.Flush()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil || len(r.Res.Rows) != 1 || r.Res.Rows[0][0].S != fmt.Sprintf("n%d", i+1) {
			t.Fatalf("pipelined exec %d: %+v %v", i, r.Res, r.Err)
		}
	}
	if err := sel.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sel.Exec(types.NewInt(1)); err == nil {
		t.Fatal("exec on closed statement succeeded")
	}
	// Prepared statements don't survive on the server after close either.
	if err := ins.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPreparedRequiresBinary(t *testing.T) {
	srv, _ := startServer(t)
	c, err := DialWith(srv.Addr().String(), Options{Protocol: ProtoJSON})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Prepare(`SELECT 1`); err == nil || !strings.Contains(err.Error(), "binary protocol") {
		t.Fatalf("Prepare over JSON: %v", err)
	}
	if _, err := c.CopyIn("T", nil, 0); err == nil || !strings.Contains(err.Error(), "binary protocol") {
		t.Fatalf("CopyIn over JSON: %v", err)
	}
}

// --- COPY bulk ingest ---------------------------------------------------

func copySchema(t *testing.T, c *Client) {
	t.Helper()
	for _, q := range []string{
		`CREATE TABLE CV (vid BIGINT PRIMARY KEY, name VARCHAR)`,
		`CREATE TABLE CE (eid BIGINT PRIMARY KEY, a BIGINT, b BIGINT)`,
		`CREATE DIRECTED GRAPH VIEW CG VERTEXES(ID=vid) FROM CV EDGES(ID=eid, FROM=a, TO=b) FROM CE`,
	} {
		if _, err := c.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
}

func TestCopyInEndToEnd(t *testing.T) {
	_, c := startServer(t)
	copySchema(t, c)

	const nv, ne = 500, 2000
	ci, err := c.CopyIn("CV", nil, nv)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]types.Row, 0, 100)
	for i := 0; i < nv; i++ {
		batch = append(batch, types.Row{types.NewInt(int64(i)), types.NewString(fmt.Sprintf("v%d", i))})
		if len(batch) == cap(batch) {
			if err := ci.Send(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	res, err := ci.Close()
	if err != nil || res.Affected != nv {
		t.Fatalf("vertex copy: %+v %v", res, err)
	}

	// Edges through an explicit (reordered) column list.
	ci, err = c.CopyIn("CE", []string{"eid", "b", "a"}, ne)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ne; i++ {
		batch = append(batch, types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64((i + 1) % nv)), // b
			types.NewInt(int64(i % nv)),       // a
		})
		if len(batch) == cap(batch) {
			if err := ci.Send(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if err := ci.Send(batch); err != nil {
		t.Fatal(err)
	}
	res, err = ci.Close()
	if err != nil || res.Affected != ne {
		t.Fatalf("edge copy: %+v %v", res, err)
	}

	for q, want := range map[string]int64{
		`SELECT COUNT(*) FROM CV`:                     nv,
		`SELECT COUNT(*) FROM CE`:                     ne,
		`SELECT COUNT(*) FROM CE WHERE a = 3`:         ne / nv,
		`SELECT COUNT(*) FROM CG.DEGREE_CENTRALITY()`: nv,
	} {
		res, err := c.Exec(q)
		if err != nil || len(res.Rows) != 1 || res.Rows[0][0].I != want {
			t.Fatalf("%s: %+v %v (want %d)", q, res, err, want)
		}
	}
}

func TestCopyInFailureKeepsAppliedBatches(t *testing.T) {
	_, c := startServer(t)
	copySchema(t, c)
	ci, err := c.CopyIn("CV", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	good := []types.Row{
		{types.NewInt(1), types.NewString("a")},
		{types.NewInt(2), types.NewString("b")},
	}
	bad := []types.Row{
		{types.NewInt(3), types.NewString("c")},
		{types.NewInt(1), types.NewString("dup")}, // duplicate key: batch fails
	}
	tail := []types.Row{{types.NewInt(4), types.NewString("d")}}
	if err := ci.Send(good); err != nil {
		t.Fatal(err)
	}
	if err := ci.Send(bad); err != nil {
		t.Fatal(err)
	}
	if err := ci.Send(tail); err != nil { // discarded after the failure
		t.Fatal(err)
	}
	_, err = ci.Close()
	var se *ServerError
	if !errors.As(err, &se) || !strings.Contains(se.Msg, "after 2 row(s)") {
		t.Fatalf("copy close: %v, want bulk-load failure naming 2 applied rows", err)
	}
	// The failed batch rolled back whole; earlier batches stayed; the
	// stream after the failure was discarded; the connection still works.
	res, err := c.Exec(`SELECT COUNT(*) FROM CV`)
	if err != nil || res.Rows[0][0].I != 2 {
		t.Fatalf("rows after failed copy: %+v %v", res, err)
	}
}

func TestCopyInOwnsConnection(t *testing.T) {
	_, c := startServer(t)
	copySchema(t, c)
	ci, err := c.CopyIn("CV", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`SELECT 1 WHERE 1 = 0`); err == nil || !strings.Contains(err.Error(), "COPY") {
		t.Fatalf("Exec during COPY: %v", err)
	}
	if _, err := ci.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`SELECT 1 WHERE 1 = 0`); err != nil {
		t.Fatalf("Exec after COPY close: %v", err)
	}
}

// --- oversized frames ---------------------------------------------------

func TestOversizedFrameGetsDiagnostic(t *testing.T) {
	srv, _ := startServer(t)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	if _, err := conn.Write(wire.Hello()); err != nil {
		t.Fatal(err)
	}
	if kind, _, err := wire.ReadFrame(br); err != nil || kind != wire.MsgHello {
		t.Fatalf("hello ack: %d %v", kind, err)
	}
	// An oversized frame: valid header declaring cap+1 bytes, then that
	// many bytes of junk plus a CRC. The server must answer with the
	// diagnostic and keep the connection serving.
	huge := wire.MaxFrameBytes + 1
	hdr := []byte{byte(huge >> 24), byte(huge >> 16), byte(huge >> 8), byte(huge)}
	if _, err := conn.Write(hdr); err != nil {
		t.Fatal(err)
	}
	junk := make([]byte, 1<<20)
	for sent := 0; sent < huge+4; {
		n := len(junk)
		if rem := huge + 4 - sent; n > rem {
			n = rem
		}
		if _, err := conn.Write(junk[:n]); err != nil {
			t.Fatal(err)
		}
		sent += n
	}
	if err := wire.WriteFrame(conn, wire.MsgQuery, wire.AppendQuery(nil, "SELECT 1 WHERE 1 = 0", 0)); err != nil {
		t.Fatal(err)
	}
	kind, body, err := wire.ReadFrame(br)
	if err != nil || kind != wire.MsgError {
		t.Fatalf("oversized frame response: %d %v", kind, err)
	}
	msg, _, _, err := wire.DecodeError(body)
	if err != nil || !strings.Contains(msg, "request too large") {
		t.Fatalf("diagnostic: %q %v", msg, err)
	}
	if kind, _, err = wire.ReadFrame(br); err != nil || kind != wire.MsgResult {
		t.Fatalf("stream desynchronized after oversized frame: %d %v", kind, err)
	}
}

// --- faultnet: corrupted and torn frames --------------------------------

// TestFramedTrafficSurvivesResponseCorruption drives a client through a
// listener that corrupts and tears server->client bytes: every request
// must end in either a correct result or a client-side receive error that
// poisons the connection — never a silently wrong result.
func TestFramedTrafficSurvivesResponseCorruption(t *testing.T) {
	eng := core.New(core.Options{})
	srv := New(eng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fln := faultnet.Wrap(ln, faultnet.Options{Seed: 7, CorruptProb: 0.3, SplitProb: 0.3})
	go srv.Serve(fln)
	t.Cleanup(srv.Shutdown)

	// RequestTimeout matters here: a corrupted length header can promise
	// bytes that never arrive, and only the wire deadline turns that into
	// a clean (poisoning) receive error instead of a hang.
	copts := Options{ConnectTimeout: 5 * time.Second, RequestTimeout: 500 * time.Millisecond}
	redial := func() *Client {
		for {
			c, err := DialWith(ln.Addr().String(), copts)
			if err == nil {
				return c
			}
		}
	}
	setup := redial()
	for {
		if _, err := setup.Exec(`CREATE TABLE F (a BIGINT PRIMARY KEY)`); err == nil {
			break
		} else if se := new(ServerError); errors.As(err, &se) {
			break // reached the engine (already created)
		}
		setup.Close()
		setup = redial()
	}
	setup.Close()

	var sawReceiveError bool
	var c *Client
	for i := 0; i < 60; i++ {
		if c == nil || c.Broken() {
			if c != nil {
				c.Close()
			}
			c = redial()
		}
		res, err := c.Exec(`SELECT COUNT(*) FROM F`)
		if err != nil {
			var se *ServerError
			if errors.As(err, &se) {
				t.Fatalf("corruption surfaced as a server error: %v", se)
			}
			sawReceiveError = true
			if !c.Broken() {
				t.Fatalf("receive failure did not poison the connection: %v", err)
			}
			continue
		}
		// CRC held: the result must be exactly right.
		if len(res.Rows) != 1 || res.Rows[0][0].I != 0 {
			t.Fatalf("silently wrong result under corruption: %+v", res)
		}
	}
	if c != nil {
		c.Close()
	}
	if !sawReceiveError {
		t.Fatal("fault schedule never corrupted a response; raise CorruptProb")
	}
}

// TestFramedTrafficSurvivesRequestCorruption corrupts client->server
// frames: the server must answer with a bad-frame diagnostic or drop the
// connection — and keep serving healthy clients — while the client never
// sees a success for a request the server rejected.
func TestFramedTrafficSurvivesRequestCorruption(t *testing.T) {
	srv, admin := startServer(t)
	if _, err := admin.Exec(`CREATE TABLE RQ (a BIGINT)`); err != nil {
		t.Fatal(err)
	}
	var sawFailure bool
	for i := 0; i < 30; i++ {
		raw, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		fc := faultnet.WrapConn(raw, faultnet.Options{Seed: int64(i), CorruptProb: 0.4, SplitProb: 0.3})
		c, err := NewClientConn(fc, Options{ConnectTimeout: 5 * time.Second, RequestTimeout: 500 * time.Millisecond})
		if err != nil {
			continue // hello corrupted; the server closed on us
		}
		for j := 0; j < 5; j++ {
			res, err := c.Exec(`SELECT COUNT(*) FROM RQ`)
			if err != nil {
				sawFailure = true
				break
			}
			if len(res.Rows) != 1 || res.Rows[0][0].I != 0 {
				t.Fatalf("silently wrong result: %+v", res)
			}
		}
		c.Close()
	}
	if !sawFailure {
		t.Fatal("fault schedule never corrupted a request; raise CorruptProb")
	}
	// The server survived all of it.
	if _, err := admin.Exec(`SELECT COUNT(*) FROM RQ`); err != nil {
		t.Fatalf("server unhealthy after request corruption: %v", err)
	}
}

// --- connection pool ----------------------------------------------------

func TestPoolReusesAndReplacesConnections(t *testing.T) {
	srv, admin := startServer(t)
	if _, err := admin.Exec(`CREATE TABLE PL (a BIGINT)`); err != nil {
		t.Fatal(err)
	}
	pool := NewPool(srv.Addr().String(), Options{ConnectTimeout: 5 * time.Second}, 4)
	defer pool.Close()

	c1, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(c1)
	c2, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("healthy connection was not reused")
	}

	// Poison it: a dead socket mid-request breaks the client, and the pool
	// must discard it on return instead of handing it out again.
	c2.conn.Close()
	if _, err := c2.Exec(`SELECT 1 WHERE 1 = 0`); err == nil {
		t.Fatal("exec on closed conn succeeded")
	}
	if !c2.Broken() {
		t.Fatal("dead connection not marked broken")
	}
	pool.Put(c2)
	if idle, _ := pool.Stats(); idle != 0 {
		t.Fatalf("poisoned connection parked in idle set (idle=%d)", idle)
	}
	c3, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if c3 == c2 {
		t.Fatal("poisoned connection resurfaced")
	}
	if _, err := c3.Exec(`SELECT COUNT(*) FROM PL`); err != nil {
		t.Fatal(err)
	}
	pool.Put(c3)

	if _, err := pool.Exec(`SELECT COUNT(*) FROM PL`); err != nil {
		t.Fatal(err)
	}
}

func TestPoolCapacityBlocksUntilReturn(t *testing.T) {
	srv, _ := startServer(t)
	pool := NewPool(srv.Addr().String(), Options{ConnectTimeout: 5 * time.Second}, 1)
	defer pool.Close()
	c, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan *Client)
	go func() {
		c2, err := pool.Get()
		if err != nil {
			t.Error(err)
		}
		got <- c2
	}()
	select {
	case <-got:
		t.Fatal("Get returned past the pool capacity")
	case <-time.After(50 * time.Millisecond):
	}
	pool.Put(c)
	select {
	case c2 := <-got:
		if c2 != c {
			t.Fatal("blocked Get did not receive the returned connection")
		}
		pool.Put(c2)
	case <-time.After(5 * time.Second):
		t.Fatal("Get still blocked after a connection was returned")
	}
}

func TestPoolConcurrentWorkload(t *testing.T) {
	srv, admin := startServer(t)
	if _, err := admin.Exec(`CREATE TABLE PC (a BIGINT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	pool := NewPool(srv.Addr().String(), Options{ConnectTimeout: 5 * time.Second}, 4)
	defer pool.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := pool.Exec(fmt.Sprintf(`INSERT INTO PC VALUES (%d)`, g*100+i)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res, err := admin.Exec(`SELECT COUNT(*) FROM PC`)
	if err != nil || res.Rows[0][0].I != 64 {
		t.Fatalf("concurrent pool inserts: %+v %v", res, err)
	}
	if idle, out := pool.Stats(); out != 0 || idle == 0 || idle > 4 {
		t.Fatalf("pool stats after workload: idle=%d out=%d", idle, out)
	}
}
