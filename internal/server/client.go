package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"

	"grfusion/internal/types"
)

// Client is a synchronous connection to a GRFusion server. It is safe for
// concurrent use; requests are serialized over the single connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bufio.NewReader(conn))
	dec.UseNumber()
	return &Client{conn: conn, enc: json.NewEncoder(conn), dec: dec}, nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// Result is a decoded server response.
type Result struct {
	Columns  []string
	Rows     []types.Row
	Affected int
}

// Exec submits one statement and waits for its response. Server-side
// errors come back as Go errors.
func (c *Client) Exec(query string) (*Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(Request{Query: query}); err != nil {
		return nil, fmt.Errorf("send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("receive: %w", err)
	}
	if resp.Error != "" {
		return nil, fmt.Errorf("server: %s", resp.Error)
	}
	out := &Result{Columns: resp.Columns, Affected: resp.Affected}
	for _, wire := range resp.Rows {
		row := make(types.Row, len(wire))
		for i, v := range wire {
			row[i] = decodeValue(v)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func decodeValue(v any) types.Value {
	switch x := v.(type) {
	case nil:
		return types.Null()
	case bool:
		return types.NewBool(x)
	case string:
		return types.NewString(x)
	case json.Number:
		if !strings.ContainsAny(x.String(), ".eE") {
			if i, err := x.Int64(); err == nil {
				return types.NewInt(i)
			}
		}
		if f, err := x.Float64(); err == nil {
			return types.NewFloat(f)
		}
		return types.NewString(x.String())
	case float64: // reachable only without UseNumber
		return types.NewFloat(x)
	default:
		return types.NewString(fmt.Sprint(x))
	}
}
