package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"grfusion/internal/types"
)

// Options tune a Client's fault-tolerance envelope. The zero value means
// no timeouts and no retries (the pre-hardening behavior).
type Options struct {
	// ConnectTimeout bounds the initial dial. Zero means no bound.
	ConnectTimeout time.Duration
	// RequestTimeout bounds one request/response round trip on the wire
	// and is also sent to the server as timeout_ms so the statement itself
	// is deadline-bounded. Zero means no bound.
	RequestTimeout time.Duration
	// MaxRetries is how many times Exec re-submits a statement the server
	// shed with a retryable error (admission control). Only retryable
	// errors are retried: the statement never started, so re-submitting
	// cannot double-execute it. Zero disables retries.
	MaxRetries int
	// RetryBase is the first retry backoff, doubled per attempt with
	// jitter. Zero selects 10ms.
	RetryBase time.Duration
}

// Client is a synchronous connection to a GRFusion server. It is safe for
// concurrent use; requests are serialized over the single connection.
type Client struct {
	opts Options

	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
	// broken poisons the connection after a mid-exchange failure (e.g. a
	// request whose response never arrived before RequestTimeout): the
	// stream may hold a stale response, so no further request can trust
	// what it reads.
	broken error
}

// Dial connects to a server with no timeouts or retries configured.
func Dial(addr string) (*Client, error) { return DialWith(addr, Options{}) }

// DialWith connects to a server with the given fault-tolerance options.
func DialWith(addr string, opts Options) (*Client, error) {
	if opts.RetryBase <= 0 {
		opts.RetryBase = 10 * time.Millisecond
	}
	d := net.Dialer{Timeout: opts.ConnectTimeout}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bufio.NewReader(conn))
	dec.UseNumber()
	return &Client{opts: opts, conn: conn, enc: json.NewEncoder(conn), dec: dec}, nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// Result is a decoded server response.
type Result struct {
	Columns  []string
	Rows     []types.Row
	Affected int
}

// ServerError is an error reported by the server for one statement.
type ServerError struct {
	Msg string
	// Retryable marks a shed statement that never started executing.
	Retryable bool
	// Degraded marks a write the engine rejected in degraded read-only
	// mode. Terminal: the retry loop never re-submits it (a retry storm
	// against a sick disk helps nobody), regardless of Retryable.
	Degraded bool
}

func (e *ServerError) Error() string { return "server: " + e.Msg }

// Exec submits one statement and waits for its response. Server-side
// errors come back as *ServerError. Statements shed by the server's
// admission control (retryable errors) are retried up to MaxRetries times
// with exponential backoff; other failures are never retried, since the
// statement may have executed. Degraded-mode write rejections are
// terminal even though the statement never started: the disk is sick, and
// the health surface — not a retry loop — says when writes are welcome
// again.
func (c *Client) Exec(query string) (*Result, error) {
	return c.ExecTimeout(query, c.opts.RequestTimeout)
}

// ExecTimeout is Exec with an explicit per-call bound overriding
// Options.RequestTimeout: the round trip gets a wire deadline and the
// server is asked to bound the statement with timeout_ms. Zero means no
// bound.
func (c *Client) ExecTimeout(query string, timeout time.Duration) (*Result, error) {
	backoff := c.opts.RetryBase
	for attempt := 0; ; attempt++ {
		res, err := c.once(query, timeout)
		var se *ServerError
		if err == nil || !errors.As(err, &se) || !se.Retryable || se.Degraded || attempt >= c.opts.MaxRetries {
			return res, err
		}
		// Full jitter: sleep a uniform fraction of the doubling backoff so
		// shed clients don't re-arrive in lockstep.
		time.Sleep(time.Duration(rand.Int63n(int64(backoff) + 1)))
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

// Metrics fetches the server's metrics snapshot via the METRICS wire
// command. The command is never shed by admission control, so it works
// even while Exec calls are being rejected as overloaded.
func (c *Client) Metrics() (map[string]int64, error) {
	res, err := c.roundTrip(Request{Cmd: "metrics"}, c.opts.RequestTimeout)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int64, len(res.Rows))
	for _, row := range res.Rows {
		if len(row) == 2 {
			out[row[0].S] = row[1].I
		}
	}
	return out, nil
}

// Health fetches the server's durability health snapshot via the HEALTH
// wire command. Like Metrics it bypasses admission control, so it answers
// while the server sheds load — and, critically, while the engine is
// degraded.
func (c *Client) Health() (map[string]string, error) {
	res, err := c.roundTrip(Request{Cmd: "health"}, c.opts.RequestTimeout)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(res.Rows))
	for _, row := range res.Rows {
		if len(row) == 2 {
			out[row[0].S] = row[1].S
		}
	}
	return out, nil
}

func (c *Client) once(query string, timeout time.Duration) (*Result, error) {
	return c.roundTrip(Request{Query: query}, timeout)
}

func (c *Client) roundTrip(req Request, timeout time.Duration) (*Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken != nil {
		return nil, fmt.Errorf("connection poisoned by earlier failure (reconnect required): %w", c.broken)
	}
	if timeout > 0 {
		req.TimeoutMS = int64(timeout / time.Millisecond)
		if req.TimeoutMS == 0 {
			req.TimeoutMS = 1
		}
		// The wire deadline leaves headroom over the statement deadline so
		// a server-side timeout error normally arrives as a response.
		c.conn.SetDeadline(time.Now().Add(timeout + 2*time.Second))
	} else {
		c.conn.SetDeadline(time.Time{})
	}
	if err := c.enc.Encode(req); err != nil {
		c.broken = err
		return nil, fmt.Errorf("send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		// The request is in flight but its response was never read; any
		// later read could see this statement's stale response.
		c.broken = err
		return nil, fmt.Errorf("receive: %w", err)
	}
	if resp.Error != "" {
		return nil, &ServerError{Msg: resp.Error, Retryable: resp.Retryable, Degraded: resp.Degraded}
	}
	out := &Result{Columns: resp.Columns, Affected: resp.Affected}
	for _, wire := range resp.Rows {
		row := make(types.Row, len(wire))
		for i, v := range wire {
			row[i] = decodeValue(v)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func decodeValue(v any) types.Value {
	switch x := v.(type) {
	case nil:
		return types.Null()
	case bool:
		return types.NewBool(x)
	case string:
		return types.NewString(x)
	case json.Number:
		if !strings.ContainsAny(x.String(), ".eE") {
			if i, err := x.Int64(); err == nil {
				return types.NewInt(i)
			}
		}
		if f, err := x.Float64(); err == nil {
			return types.NewFloat(f)
		}
		return types.NewString(x.String())
	case float64: // reachable only without UseNumber
		return types.NewFloat(x)
	default:
		return types.NewString(fmt.Sprint(x))
	}
}
