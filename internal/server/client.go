package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"grfusion/internal/types"
	"grfusion/internal/wire"
)

// Protocol selections for Options.Protocol.
const (
	// ProtoAuto negotiates: the client opens with the binary hello and
	// downgrades to JSON-lines when the server answers with a JSON parse
	// error (an old server). The default.
	ProtoAuto = "auto"
	// ProtoBinary requires the binary protocol; dialing a JSON-only
	// server fails.
	ProtoBinary = "binary"
	// ProtoJSON speaks JSON-lines unconditionally (the legacy protocol).
	ProtoJSON = "json"
)

// Options tune a Client's fault-tolerance envelope. The zero value means
// no timeouts and no retries (the pre-hardening behavior) over an
// auto-negotiated protocol.
type Options struct {
	// ConnectTimeout bounds the initial dial and protocol handshake. Zero
	// means no bound.
	ConnectTimeout time.Duration
	// RequestTimeout bounds one request/response round trip on the wire
	// and is also sent to the server as timeout_ms so the statement itself
	// is deadline-bounded. Zero means no bound.
	RequestTimeout time.Duration
	// MaxRetries is how many times Exec re-submits a statement the server
	// shed with a retryable error (admission control). Only retryable
	// errors are retried: the statement never started, so re-submitting
	// cannot double-execute it. Zero disables retries.
	MaxRetries int
	// RetryBase is the first retry backoff, doubled per attempt with
	// jitter. Zero selects 10ms.
	RetryBase time.Duration
	// Protocol selects the wire encoding: ProtoAuto (default), ProtoBinary
	// or ProtoJSON.
	Protocol string
}

// ErrBinaryUnsupported reports a ProtoBinary dial against a server that
// only speaks JSON-lines.
var ErrBinaryUnsupported = errors.New("server does not speak the binary wire protocol")

// Client is a synchronous connection to a GRFusion server. It is safe for
// concurrent use; requests are serialized over the single connection.
type Client struct {
	opts Options

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	// bw buffers outgoing requests so each submission costs one syscall at
	// flush time — in particular the JSON encoder no longer writes
	// unbuffered to the socket.
	bw     *bufio.Writer
	binary bool
	// copying blocks other requests while a COPY stream owns the
	// connection (interleaving would corrupt the stream).
	copying bool
	enc     *json.Encoder // JSON mode: writes into bw
	dec     *json.Decoder // JSON mode: reads from br
	// broken poisons the connection after a mid-exchange failure (e.g. a
	// request whose response never arrived before RequestTimeout): the
	// stream may hold a stale response, so no further request can trust
	// what it reads.
	broken error
}

// Dial connects to a server with no timeouts or retries configured.
func Dial(addr string) (*Client, error) { return DialWith(addr, Options{}) }

// DialWith connects to a server with the given fault-tolerance options
// and performs protocol negotiation per Options.Protocol.
func DialWith(addr string, opts Options) (*Client, error) {
	d := net.Dialer{Timeout: opts.ConnectTimeout}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClientConn(conn, opts)
}

// NewClientConn builds a client over an already-established connection
// (a custom dialer, or a test injecting faults) and performs protocol
// negotiation per Options.Protocol. On error the connection is closed.
func NewClientConn(conn net.Conn, opts Options) (*Client, error) {
	if opts.RetryBase <= 0 {
		opts.RetryBase = 10 * time.Millisecond
	}
	if opts.Protocol == "" {
		opts.Protocol = ProtoAuto
	}
	c := &Client{
		opts: opts,
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}
	if opts.ConnectTimeout > 0 {
		conn.SetDeadline(time.Now().Add(opts.ConnectTimeout))
	}
	switch opts.Protocol {
	case ProtoJSON:
		c.useJSON()
	case ProtoAuto, ProtoBinary:
		if err := c.handshake(); err != nil {
			conn.Close()
			return nil, err
		}
	default:
		conn.Close()
		return nil, fmt.Errorf("unknown protocol %q (want %q, %q or %q)",
			opts.Protocol, ProtoAuto, ProtoBinary, ProtoJSON)
	}
	conn.SetDeadline(time.Time{})
	return c, nil
}

func (c *Client) useJSON() {
	c.enc = json.NewEncoder(c.bw)
	dec := json.NewDecoder(c.br)
	dec.UseNumber()
	c.dec = dec
}

// handshake opens with the binary hello and sorts the server's answer:
// a binary hello frame (first byte 0x00) confirms the binary protocol; a
// JSON response (first byte '{') is an old JSON-lines server complaining
// about the hello line — consume the complaint and downgrade (ProtoAuto)
// or fail (ProtoBinary).
func (c *Client) handshake() error {
	if _, err := c.conn.Write(wire.Hello()); err != nil {
		return fmt.Errorf("handshake send: %w", err)
	}
	first, err := c.br.Peek(1)
	if err != nil {
		return fmt.Errorf("handshake: no server response: %w", err)
	}
	if first[0] != 0 {
		// A JSON-lines server answered our hello with a parse-error
		// response line.
		if c.opts.Protocol == ProtoBinary {
			return ErrBinaryUnsupported
		}
		c.useJSON()
		var discard Response
		if err := c.dec.Decode(&discard); err != nil {
			return fmt.Errorf("handshake: malformed server response: %w", err)
		}
		return nil
	}
	kind, payload, err := wire.ReadFrame(c.br)
	if err != nil {
		return fmt.Errorf("handshake: %w", err)
	}
	if kind != wire.MsgHello || len(payload) != 1 {
		return fmt.Errorf("handshake: unexpected frame kind 0x%02x", kind)
	}
	if v := payload[0]; v < 1 || v > wire.ProtoVersion {
		return fmt.Errorf("handshake: server protocol version %d not supported (max %d)", v, wire.ProtoVersion)
	}
	c.binary = true
	return nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// Binary reports whether the negotiated protocol is the binary framed
// one.
func (c *Client) Binary() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.binary
}

// Broken reports whether the connection has been poisoned by a
// mid-exchange failure and must be replaced (see Pool).
func (c *Client) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken != nil
}

// Result is a decoded server response.
type Result struct {
	Columns  []string
	Rows     []types.Row
	Affected int
}

// ServerError is an error reported by the server for one statement.
type ServerError struct {
	Msg string
	// Retryable marks a shed statement that never started executing.
	Retryable bool
	// Degraded marks a write the engine rejected in degraded read-only
	// mode. Terminal: the retry loop never re-submits it (a retry storm
	// against a sick disk helps nobody), regardless of Retryable.
	Degraded bool
}

func (e *ServerError) Error() string { return "server: " + e.Msg }

// Exec submits one statement and waits for its response. Server-side
// errors come back as *ServerError. Statements shed by the server's
// admission control (retryable errors) are retried up to MaxRetries times
// with exponential backoff; other failures are never retried, since the
// statement may have executed. Degraded-mode write rejections are
// terminal even though the statement never started: the disk is sick, and
// the health surface — not a retry loop — says when writes are welcome
// again.
func (c *Client) Exec(query string) (*Result, error) {
	return c.ExecTimeout(query, c.opts.RequestTimeout)
}

// ExecTimeout is Exec with an explicit per-call bound overriding
// Options.RequestTimeout: the round trip gets a wire deadline and the
// server is asked to bound the statement with timeout_ms. Zero means no
// bound.
func (c *Client) ExecTimeout(query string, timeout time.Duration) (*Result, error) {
	return c.withRetry(func() (*Result, error) { return c.once(query, timeout) })
}

// withRetry re-submits fn while it fails with a retryable (shed) server
// error, up to MaxRetries times with full-jitter exponential backoff.
func (c *Client) withRetry(fn func() (*Result, error)) (*Result, error) {
	backoff := c.opts.RetryBase
	for attempt := 0; ; attempt++ {
		res, err := fn()
		var se *ServerError
		if err == nil || !errors.As(err, &se) || !se.Retryable || se.Degraded || attempt >= c.opts.MaxRetries {
			return res, err
		}
		// Full jitter: sleep a uniform fraction of the doubling backoff so
		// shed clients don't re-arrive in lockstep.
		time.Sleep(time.Duration(rand.Int63n(int64(backoff) + 1)))
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

// Metrics fetches the server's metrics snapshot via the METRICS wire
// command. The command is never shed by admission control, so it works
// even while Exec calls are being rejected as overloaded.
func (c *Client) Metrics() (map[string]int64, error) {
	res, err := c.command("metrics")
	if err != nil {
		return nil, err
	}
	out := make(map[string]int64, len(res.Rows))
	for _, row := range res.Rows {
		if len(row) == 2 {
			out[row[0].S] = row[1].I
		}
	}
	return out, nil
}

// Health fetches the server's durability health snapshot via the HEALTH
// wire command. Like Metrics it bypasses admission control, so it answers
// while the server sheds load — and, critically, while the engine is
// degraded.
func (c *Client) Health() (map[string]string, error) {
	res, err := c.command("health")
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(res.Rows))
	for _, row := range res.Rows {
		if len(row) == 2 {
			out[row[0].S] = row[1].S
		}
	}
	return out, nil
}

func (c *Client) command(cmd string) (*Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.binary {
		return c.binRoundTripLocked(wire.MsgCommand, wire.AppendString(nil, cmd), c.opts.RequestTimeout)
	}
	return c.jsonRoundTripLocked(Request{Cmd: cmd}, c.opts.RequestTimeout)
}

func (c *Client) once(query string, timeout time.Duration) (*Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.binary {
		return c.binRoundTripLocked(wire.MsgQuery, wire.AppendQuery(nil, query, timeoutToMS(timeout)), timeout)
	}
	return c.jsonRoundTripLocked(Request{Query: query}, timeout)
}

// timeoutToMS converts a wire deadline into the timeout_ms request field
// (minimum 1ms when a bound is set at all).
func timeoutToMS(timeout time.Duration) int64 {
	if timeout <= 0 {
		return 0
	}
	ms := int64(timeout / time.Millisecond)
	if ms == 0 {
		ms = 1
	}
	return ms
}

// checkUsableLocked rejects requests on a poisoned or COPY-owned
// connection.
func (c *Client) checkUsableLocked() error {
	if c.broken != nil {
		return fmt.Errorf("connection poisoned by earlier failure (reconnect required): %w", c.broken)
	}
	if c.copying {
		return errors.New("connection is streaming a COPY bulk load; finish it first")
	}
	return nil
}

// armDeadlineLocked sets the round-trip wire deadline: the statement
// timeout plus headroom, so a server-side timeout error normally arrives
// as a response rather than a cut connection.
func (c *Client) armDeadlineLocked(timeout time.Duration) {
	if timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(timeout + 2*time.Second))
	} else {
		c.conn.SetDeadline(time.Time{})
	}
}

func (c *Client) jsonRoundTripLocked(req Request, timeout time.Duration) (*Result, error) {
	if err := c.checkUsableLocked(); err != nil {
		return nil, err
	}
	if timeout > 0 {
		req.TimeoutMS = timeoutToMS(timeout)
	}
	c.armDeadlineLocked(timeout)
	if err := c.sendJSONLocked(req); err != nil {
		return nil, err
	}
	return c.readJSONLocked()
}

func (c *Client) sendJSONLocked(req Request) error {
	if err := c.enc.Encode(req); err != nil {
		c.broken = err
		return fmt.Errorf("send: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		c.broken = err
		return fmt.Errorf("send: %w", err)
	}
	return nil
}

func (c *Client) readJSONLocked() (*Result, error) {
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		// The request is in flight but its response was never read; any
		// later read could see this statement's stale response.
		c.broken = err
		return nil, fmt.Errorf("receive: %w", err)
	}
	if resp.Error != "" {
		return nil, &ServerError{Msg: resp.Error, Retryable: resp.Retryable, Degraded: resp.Degraded}
	}
	out := &Result{Columns: resp.Columns, Affected: resp.Affected}
	for _, jrow := range resp.Rows {
		row := make(types.Row, len(jrow))
		for i, v := range jrow {
			row[i] = decodeValue(v)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func (c *Client) binRoundTripLocked(kind byte, payload []byte, timeout time.Duration) (*Result, error) {
	if err := c.checkUsableLocked(); err != nil {
		return nil, err
	}
	c.armDeadlineLocked(timeout)
	if err := c.sendFrameLocked(kind, payload, true); err != nil {
		return nil, err
	}
	kind, body, err := c.readFrameLocked()
	if err != nil {
		return nil, err
	}
	return c.decodeResponseLocked(kind, body)
}

// sendFrameLocked writes one frame into the output buffer, flushing when
// asked (a pipelining caller defers the flush).
func (c *Client) sendFrameLocked(kind byte, payload []byte, flush bool) error {
	if err := wire.WriteFrame(c.bw, kind, payload); err != nil {
		c.broken = err
		return fmt.Errorf("send: %w", err)
	}
	if flush {
		if err := c.bw.Flush(); err != nil {
			c.broken = err
			return fmt.Errorf("send: %w", err)
		}
	}
	return nil
}

func (c *Client) readFrameLocked() (byte, []byte, error) {
	kind, body, err := wire.ReadFrame(c.br)
	if err != nil {
		c.broken = err
		return 0, nil, fmt.Errorf("receive: %w", err)
	}
	return kind, body, nil
}

// decodeResponseLocked turns a response frame into a Result or error. A
// malformed frame poisons the connection (the stream can no longer be
// trusted); a well-formed MsgError does not.
func (c *Client) decodeResponseLocked(kind byte, body []byte) (*Result, error) {
	switch kind {
	case wire.MsgResult:
		r, err := wire.DecodeResult(body)
		if err != nil {
			c.broken = err
			return nil, fmt.Errorf("receive: %w", err)
		}
		return &Result{Columns: r.Columns, Rows: r.Rows, Affected: r.Affected}, nil
	case wire.MsgError:
		msg, retryable, degraded, err := wire.DecodeError(body)
		if err != nil {
			c.broken = err
			return nil, fmt.Errorf("receive: %w", err)
		}
		return nil, &ServerError{Msg: msg, Retryable: retryable, Degraded: degraded}
	default:
		err := fmt.Errorf("receive: unexpected response frame kind 0x%02x", kind)
		c.broken = err
		return nil, err
	}
}

func decodeValue(v any) types.Value {
	switch x := v.(type) {
	case nil:
		return types.Null()
	case bool:
		return types.NewBool(x)
	case string:
		return types.NewString(x)
	case json.Number:
		if !strings.ContainsAny(x.String(), ".eE") {
			if i, err := x.Int64(); err == nil {
				return types.NewInt(i)
			}
		}
		if f, err := x.Float64(); err == nil {
			return types.NewFloat(f)
		}
		return types.NewString(x.String())
	case float64: // reachable only without UseNumber
		return types.NewFloat(x)
	default:
		return types.NewString(fmt.Sprint(x))
	}
}
