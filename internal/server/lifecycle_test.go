package server

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"grfusion/internal/core"
	"grfusion/internal/exec"
	"grfusion/internal/faultnet"
)

// quietLogger swallows expected operational noise (panic stacks, accept
// retries) so test output stays readable.
func quietLogger() *log.Logger { return log.New(io.Discard, "", 0) }

// startServerWith brings up a configured server on an ephemeral port.
func startServerWith(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	eng := core.New(core.Options{})
	srv := NewWith(eng, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Shutdown)
	return srv, ln.Addr().String()
}

// cyclicSetup loads a complete digraph on 10 vertices — the runaway
// ALLPATHS workload — through the given client.
func cyclicSetup(t *testing.T, c *Client) {
	t.Helper()
	for _, q := range []string{
		`CREATE TABLE V (vid BIGINT PRIMARY KEY)`,
		`CREATE TABLE E (eid BIGINT PRIMARY KEY, a BIGINT, b BIGINT)`,
	} {
		if _, err := c.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	eid := 0
	for a := 1; a <= 10; a++ {
		var vals []string
		for b := 1; b <= 10; b++ {
			if a == b {
				continue
			}
			eid++
			vals = append(vals, fmt.Sprintf("(%d,%d,%d)", eid, a, b))
		}
		if _, err := c.Exec(fmt.Sprintf(`INSERT INTO E VALUES %s`, strings.Join(vals, ","))); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Exec(fmt.Sprintf(`INSERT INTO V VALUES (%d)`, a)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Exec(`CREATE DIRECTED GRAPH VIEW K
		VERTEXES(ID = vid) FROM V
		EDGES(ID = eid, FROM = a, TO = b) FROM E`); err != nil {
		t.Fatal(err)
	}
}

const runawayQuery = `SELECT COUNT(*) FROM K.Paths PS HINT(DFS, ALLPATHS) WHERE PS.StartVertex.Id = 1`

func TestClientTimeoutAbortsRunawayQuery(t *testing.T) {
	_, addr := startServerWith(t, Config{Logger: quietLogger()})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cyclicSetup(t, c)
	start := time.Now()
	_, err = c.ExecTimeout(runawayQuery, 50*time.Millisecond)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("timeout took %v to take effect", elapsed)
	}
	if err == nil || !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("err = %v, want a query-timeout error", err)
	}
	// The same connection keeps working: the timeout came back as an
	// orderly response, not a broken stream.
	if _, err := c.Exec(`SELECT COUNT(*) FROM V`); err != nil {
		t.Fatalf("connection unusable after statement timeout: %v", err)
	}
}

func TestServerQueryTimeoutConfig(t *testing.T) {
	_, addr := startServerWith(t, Config{QueryTimeout: 50 * time.Millisecond, Logger: quietLogger()})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cyclicSetup(t, c)
	if _, err := c.Exec(runawayQuery); err == nil || !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("err = %v, want a query-timeout error", err)
	}
}

func TestPanicIsolationAcrossConnections(t *testing.T) {
	_, addr := startServerWith(t, Config{Logger: quietLogger()})
	victim, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	bystander, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer bystander.Close()

	if _, err := victim.Exec(`CREATE TABLE Boom (a BIGINT)`); err != nil {
		t.Fatal(err)
	}
	exec.DebugPanicTable = "Boom"
	defer func() { exec.DebugPanicTable = "" }()

	// The poisoned statement gets an error response on its connection...
	if _, err := victim.Exec(`SELECT * FROM Boom`); err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("err = %v, want a panic-isolation error", err)
	}
	// ...the same connection survives...
	if _, err := victim.Exec(`SELECT COUNT(*) FROM Boom WHERE a > 0`); err == nil {
		// the table is still poisoned; the point is we got a response
		t.Log("second poisoned query also answered (ok)")
	}
	// ...and other connections never notice.
	exec.DebugPanicTable = ""
	if _, err := bystander.Exec(`INSERT INTO Boom VALUES (7)`); err != nil {
		t.Fatalf("bystander connection broken by another connection's panic: %v", err)
	}
	res, err := victim.Exec(`SELECT COUNT(*) FROM Boom`)
	if err != nil || res.Rows[0][0].I != 1 {
		t.Fatalf("server unhealthy after panic: %v %v", res, err)
	}
}

func TestGracefulShutdownDrainsInFlightStatement(t *testing.T) {
	eng := core.New(core.Options{})
	srv := NewWith(eng, Config{DrainTimeout: 30 * time.Second, Logger: quietLogger()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`CREATE TABLE Slow (a BIGINT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`INSERT INTO Slow VALUES (42)`); err != nil {
		t.Fatal(err)
	}

	// Deterministic in-flight statement: the scan blocks in Open until we
	// release it, well after Shutdown has begun.
	entered := make(chan struct{})
	release := make(chan struct{})
	exec.DebugStallTable = "Slow"
	exec.DebugStall = func() {
		close(entered)
		<-release
	}
	defer func() { exec.DebugStallTable = ""; exec.DebugStall = nil }()

	type outcome struct {
		res *Result
		err error
	}
	got := make(chan outcome, 1)
	go func() {
		res, err := c.Exec(`SELECT a FROM Slow`)
		got <- outcome{res, err}
	}()
	<-entered

	shutdownDone := make(chan struct{})
	go func() {
		srv.Shutdown()
		close(shutdownDone)
	}()
	// Shutdown must wait for the in-flight statement, not kill it.
	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned while a statement was in flight")
	case <-time.After(100 * time.Millisecond):
	}
	close(release)

	select {
	case o := <-got:
		if o.err != nil {
			t.Fatalf("in-flight statement lost its response: %v", o.err)
		}
		if len(o.res.Rows) != 1 || o.res.Rows[0][0].I != 42 {
			t.Fatalf("in-flight result corrupted: %+v", o.res)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight statement never completed")
	}
	select {
	case <-shutdownDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown never returned after drain")
	}

	// Post-shutdown: new connections are refused cleanly.
	if conn, err := net.Dial("tcp", ln.Addr().String()); err == nil {
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 1)
		if _, rerr := conn.Read(buf); rerr == nil {
			t.Fatal("post-shutdown connection was served")
		}
		conn.Close()
	}
}

func TestForcedShutdownCancelsStuckStatement(t *testing.T) {
	eng := core.New(core.Options{})
	srv := NewWith(eng, Config{DrainTimeout: 100 * time.Millisecond, Logger: quietLogger()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cyclicSetup(t, c)

	// A runaway statement with no deadline: only the forced phase of
	// Shutdown (baseCtx cancel + conn close) can stop it.
	go c.Exec(runawayQuery)
	time.Sleep(100 * time.Millisecond) // let it start traversing

	done := make(chan struct{})
	go func() {
		srv.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Shutdown hung on a runaway statement despite DrainTimeout")
	}
}

func TestAdmissionControlShedsAndClientRetries(t *testing.T) {
	_, addr := startServerWith(t, Config{MaxConcurrent: 1, Logger: quietLogger()})
	setup, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()
	if _, err := setup.Exec(`CREATE TABLE Slow (a BIGINT)`); err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	exec.DebugStallTable = "Slow"
	exec.DebugStall = func() {
		once.Do(func() { close(entered) })
		<-release
	}
	defer func() { exec.DebugStallTable = ""; exec.DebugStall = nil }()

	// Occupy the only admission slot.
	go setup.Exec(`SELECT a FROM Slow`)
	<-entered

	// A plain client is shed immediately with a retryable error.
	plain, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	_, err = plain.Exec(`SELECT COUNT(*) FROM Slow WHERE a = 0`)
	var se *ServerError
	if err == nil || !asServerError(err, &se) || !se.Retryable {
		t.Fatalf("err = %v, want a retryable overload error", err)
	}
	if !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("overload error not descriptive: %v", err)
	}

	// A retrying client rides out the overload: release the slot shortly
	// after its first shed.
	retrier, err := DialWith(addr, Options{MaxRetries: 20, RetryBase: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer retrier.Close()
	go func() {
		time.Sleep(150 * time.Millisecond)
		close(release)
	}()
	if _, err := retrier.Exec(`SELECT COUNT(*) FROM Slow WHERE a = 0`); err != nil {
		t.Fatalf("retrying client failed across a transient overload: %v", err)
	}
}

func asServerError(err error, target **ServerError) bool {
	for err != nil {
		if se, ok := err.(*ServerError); ok {
			*target = se
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestOversizedRequestGetsDiagnosticResponse(t *testing.T) {
	_, addr := startServerWith(t, Config{Logger: quietLogger()})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// One line over the 16 MiB cap. Send in the background: the server
	// may answer (and close) before consuming the whole line.
	huge := append([]byte(`{"query": "SELECT `), bytes.Repeat([]byte("x"), maxRequestBytes+1024)...)
	huge = append(huge, []byte(`"}`+"\n")...)
	go conn.Write(huge)
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("no diagnostic before hangup: %v", err)
	}
	if !strings.Contains(line, "request too large") {
		t.Fatalf("response: %s", line)
	}
}

func TestIdleConnectionsAreReaped(t *testing.T) {
	_, addr := startServerWith(t, Config{IdleTimeout: 100 * time.Millisecond, Logger: quietLogger()})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	buf := make([]byte, 1)
	start := time.Now()
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("idle connection was not closed")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("idle reaping took too long")
	}
}

func TestAcceptLoopSurvivesTemporaryErrors(t *testing.T) {
	eng := core.New(core.Options{})
	srv := NewWith(eng, Config{Logger: quietLogger()})
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Every other accept fails with a temporary error first.
	ln := faultnet.Wrap(inner, faultnet.Options{AcceptErrEvery: 2})
	go srv.Serve(ln)
	t.Cleanup(srv.Shutdown)

	for i := 0; i < 6; i++ {
		c, err := Dial(inner.Addr().String())
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		if _, err := c.Exec(`SHOW TABLES`); err != nil {
			t.Fatalf("exec %d after injected accept errors: %v", i, err)
		}
		c.Close()
	}
}

func TestRequestTimeoutMSFieldIsHonored(t *testing.T) {
	// timeout_ms in the raw wire request bounds the statement without any
	// client-library involvement.
	_, addr := startServerWith(t, Config{Logger: quietLogger()})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cyclicSetup(t, c)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, `{"query": %q, "timeout_ms": 50}`+"\n", runawayQuery)
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "timeout") {
		t.Fatalf("response: %s", line)
	}
}
