package server

import (
	"encoding/json"
	"errors"
	"fmt"

	"grfusion/internal/types"
	"grfusion/internal/wire"
)

// Pipeline batches many requests into one network write. Queue requests
// with Query/ExecStmt, then Flush sends them all in one buffered write
// and reads the responses back in request order — amortizing the network
// round trip that otherwise dominates point-query latency. The server
// executes pipelined statements in arrival order, so a pipeline has the
// same semantics as the equivalent sequence of Exec calls, minus N-1
// round trips.
//
// A Pipeline buffers encoded requests locally; it touches the connection
// only inside Flush, so building a pipeline never blocks other users of
// the client.
type Pipeline struct {
	c *Client
	// buf holds the encoded (framed or JSON-line) requests.
	buf []byte
	n   int
	err error // first encode error; Flush reports it without sending
}

// PipeResult is the outcome of one pipelined request.
type PipeResult struct {
	Res *Result
	Err error
}

// Pipeline starts an empty request batch.
func (c *Client) Pipeline() *Pipeline { return &Pipeline{c: c} }

// Len returns how many requests are queued.
func (p *Pipeline) Len() int { return p.n }

// Query queues one SQL statement.
func (p *Pipeline) Query(query string) *Pipeline {
	if p.err != nil {
		return p
	}
	timeoutMS := timeoutToMS(p.c.opts.RequestTimeout)
	if p.c.Binary() {
		p.buf = wire.AppendFrame(p.buf, wire.MsgQuery, wire.AppendQuery(nil, query, timeoutMS))
	} else {
		line, err := json.Marshal(Request{Query: query, TimeoutMS: timeoutMS})
		if err != nil {
			p.err = err
			return p
		}
		p.buf = append(append(p.buf, line...), '\n')
	}
	p.n++
	return p
}

// ExecStmt queues one prepared-statement execution (binary protocol
// only).
func (p *Pipeline) ExecStmt(s *Stmt, params ...types.Value) *Pipeline {
	if p.err != nil {
		return p
	}
	if !p.c.Binary() {
		p.err = errors.New("pipelined prepared statements require the binary protocol")
		return p
	}
	payload := wire.AppendExecPrepared(nil, s.id, timeoutToMS(p.c.opts.RequestTimeout), params)
	p.buf = wire.AppendFrame(p.buf, wire.MsgExecPrepared, payload)
	p.n++
	return p
}

// Flush writes every queued request in one buffered send and reads their
// responses in order. The returned slice has one entry per queued
// request. The second return value is the first transport-level failure
// (nil when every response arrived — individual statement errors live in
// the per-request entries). After Flush the pipeline is empty and
// reusable.
func (p *Pipeline) Flush() ([]PipeResult, error) {
	if p.err != nil {
		err := p.err
		p.buf, p.n, p.err = p.buf[:0], 0, nil
		return nil, err
	}
	n := p.n
	if n == 0 {
		return nil, nil
	}
	c := p.c
	c.mu.Lock()
	defer c.mu.Unlock()
	defer func() { p.buf, p.n = p.buf[:0], 0 }()
	if err := c.checkUsableLocked(); err != nil {
		return nil, err
	}
	// The wire deadline covers the whole batch: each response refreshes it.
	c.armDeadlineLocked(c.opts.RequestTimeout)
	if _, err := c.bw.Write(p.buf); err != nil {
		c.broken = err
		return nil, fmt.Errorf("send: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		c.broken = err
		return nil, fmt.Errorf("send: %w", err)
	}
	out := make([]PipeResult, 0, n)
	for i := 0; i < n; i++ {
		c.armDeadlineLocked(c.opts.RequestTimeout)
		var res *Result
		var err error
		if c.binary {
			var kind byte
			var body []byte
			kind, body, err = c.readFrameLocked()
			if err == nil {
				res, err = c.decodeResponseLocked(kind, body)
			}
		} else {
			res, err = c.readJSONLocked()
		}
		out = append(out, PipeResult{Res: res, Err: err})
		if c.broken != nil {
			// Transport failure: later responses can never arrive.
			return out, err
		}
	}
	return out, nil
}
