package server

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"grfusion/internal/core"
)

// startStressServer brings up a server over an engine preloaded with a
// small social graph and a traversal worker pool, so concurrent sessions
// exercise both the shared-read lock and the parallel PathScan.
func startStressServer(t *testing.T) (*Server, string) {
	t.Helper()
	eng := core.New(core.Options{Workers: 4})
	script := `
		CREATE TABLE V (vid BIGINT PRIMARY KEY, name VARCHAR);
		CREATE TABLE E (eid BIGINT PRIMARY KEY, src BIGINT, dst BIGINT);
	`
	if _, err := eng.ExecuteScript(script); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := eng.Execute(fmt.Sprintf(`INSERT INTO V VALUES (%d, 'v%d')`, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	eid := 0
	for i := 0; i < 30; i++ {
		for _, d := range []int{1, 3} {
			if i+d < 30 {
				if _, err := eng.Execute(fmt.Sprintf(`INSERT INTO E VALUES (%d, %d, %d)`, eid, i, i+d)); err != nil {
					t.Fatal(err)
				}
				eid++
			}
		}
	}
	if _, err := eng.Execute(`CREATE DIRECTED GRAPH VIEW G
		VERTEXES(ID = vid, name = name) FROM V
		EDGES(ID = eid, FROM = src, TO = dst) FROM E`); err != nil {
		t.Fatal(err)
	}
	srv := New(eng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Shutdown)
	return srv, ln.Addr().String()
}

// TestConcurrentClientStress runs N client sessions mixing multi-source
// reads, point reachability probes, and DML churn against the same graph
// view. It asserts: read results stay internally consistent (a traversal
// never observes a half-applied topology change), DML round-trips leave
// the store back at its base state, and everything drains without
// deadlock under the reader/writer protocol. CI runs this under -race.
func TestConcurrentClientStress(t *testing.T) {
	_, addr := startStressServer(t)

	const (
		readers = 6
		writers = 2
		iters   = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers+writers)

	// The multi-source reachability query: every emitted path must be a
	// real path of the current topology, so row counts can vary with DML
	// but malformed rows or errors cannot occur.
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < iters; i++ {
				res, err := c.Exec(`SELECT PS FROM G.Paths PS WHERE PS.Length <= 2`)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %v", g, err)
					return
				}
				// With 30 vertexes there are always at least the 56 base
				// length-1 paths plus the base length-2 paths; DML only
				// ever adds or removes the writer's private edges, so the
				// base paths must always be present.
				if len(res.Rows) < 56 {
					errs <- fmt.Errorf("reader %d: torn read, only %d paths", g, len(res.Rows))
					return
				}
				res, err = c.Exec(`SELECT PS FROM G.Paths PS WHERE PS.StartVertex.Id = 0 AND PS.EndVertex.Id = 9 LIMIT 1`)
				if err != nil {
					errs <- fmt.Errorf("reader %d probe: %v", g, err)
					return
				}
				if len(res.Rows) != 1 {
					errs <- fmt.Errorf("reader %d: vertex 9 unreachable from 0 (%d rows)", g, len(res.Rows))
					return
				}
			}
		}(g)
	}

	// Writers churn private edge-id ranges so they never conflict with
	// each other; every insert is eventually deleted.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < iters; i++ {
				id := 10000 + w*1000 + i
				if _, err := c.Exec(fmt.Sprintf(`INSERT INTO E VALUES (%d, 2, 25)`, id)); err != nil {
					errs <- fmt.Errorf("writer %d insert: %v", w, err)
					return
				}
				if _, err := c.Exec(fmt.Sprintf(`DELETE FROM E WHERE eid = %d`, id)); err != nil {
					errs <- fmt.Errorf("writer %d delete: %v", w, err)
					return
				}
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("deadlock: stress clients did not drain")
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Base state restored: 56 edges, and the graph view agrees.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Exec(`SELECT COUNT(*) FROM E`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 56 {
		t.Fatalf("edge count after churn: %v", res.Rows[0][0])
	}
	res, err = c.Exec(`SELECT COUNT(*) FROM G.Edges E2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 56 {
		t.Fatalf("graph-view edge facet after churn: %v", res.Rows[0][0])
	}
}
