// Package server exposes a GRFusion engine over TCP, mirroring the
// client/server deployment of the paper's host system (VoltDB). The wire
// protocol is newline-delimited JSON: one request object per line, one
// response object per line. The engine serializes statement execution
// internally, so any number of connections may be served concurrently.
//
// Request:  {"query": "SELECT ...", "timeout_ms": 100}
//
//	or {"cmd": "metrics"}
//
// Response: {"columns": [...], "rows": [[...], ...], "affected": 0}
//
//	or {"error": "...", "retryable": true}
//
// Values are encoded as their natural JSON types; BIGINTs survive
// round-trips via json.Number. Paths are rendered as their PathString.
//
// The server hardens the query lifecycle (VoltDB-style admission and
// timeout management):
//
//   - per-statement deadlines: a client-supplied timeout_ms and the
//     server's QueryTimeout both bound execution; expired statements abort
//     cooperatively with a typed timeout error, not a hang.
//   - admission control: at most MaxConcurrent statements execute at once;
//     excess requests are shed immediately with a retryable error.
//   - panic isolation: a panicking statement produces an error response on
//     its connection (stack logged) and the server keeps serving.
//   - bounded I/O: idle connections and stuck writes are reaped by
//     IdleTimeout/WriteTimeout; oversized request lines get a diagnostic
//     error response instead of a silent hangup.
//   - graceful-but-bounded shutdown: Shutdown stops accepting, lets
//     in-flight statements finish and flush their responses, and only
//     force-closes connections after DrainTimeout.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"grfusion/internal/core"
	"grfusion/internal/types"
	"grfusion/internal/wire"
)

// maxRequestBytes caps one request line (the scanner buffer limit).
const maxRequestBytes = 16 << 20

// Request is one statement submission, or — when Cmd is set — a protocol
// command that bypasses SQL execution entirely.
type Request struct {
	Query string `json:"query,omitempty"`
	// Cmd names a protocol command. "metrics" returns the engine's metrics
	// snapshot as name/value rows; "health" returns the durability health
	// snapshot. Both skip admission control so the server stays observable
	// under overload — health in particular must answer while the engine
	// is degraded and shedding.
	Cmd string `json:"cmd,omitempty"`
	// TimeoutMS bounds this statement's execution in milliseconds; zero
	// means no client-side bound (the server's QueryTimeout, if any, still
	// applies — the effective deadline is the tighter of the two).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Response is the outcome of one statement.
type Response struct {
	Columns  []string `json:"columns,omitempty"`
	Rows     [][]any  `json:"rows,omitempty"`
	Affected int      `json:"affected,omitempty"`
	Error    string   `json:"error,omitempty"`
	// Retryable marks an error the client may safely retry because the
	// statement was never started (e.g. shed by admission control).
	Retryable bool `json:"retryable,omitempty"`
	// Degraded marks a write rejected because the engine is in degraded
	// read-only mode (core.ErrDegraded). Terminal for the client's retry
	// loop: retrying would hammer a sick disk — back off until the
	// health surface reports the engine read-write again.
	Degraded bool `json:"degraded,omitempty"`
}

// Config tunes the server's robustness envelope. The zero value imposes no
// limits (matching the pre-hardening behavior, except that Shutdown drains
// gracefully).
type Config struct {
	// MaxConcurrent bounds how many statements may execute at once across
	// all connections. Excess requests are shed immediately with a
	// retryable error response (no queueing — the engine's statement lock
	// is the queue). Zero means unlimited.
	MaxConcurrent int
	// QueryTimeout bounds each statement's execution wall clock. A
	// client's timeout_ms may only tighten it. Zero means no server bound.
	QueryTimeout time.Duration
	// IdleTimeout closes connections with no request for this long. Zero
	// means never.
	IdleTimeout time.Duration
	// WriteTimeout bounds writing one response. Zero means no bound.
	WriteTimeout time.Duration
	// DrainTimeout bounds how long Shutdown waits for in-flight statements
	// to finish before force-closing connections and canceling their
	// queries. Zero selects a 10s default; negative waits indefinitely.
	DrainTimeout time.Duration
	// Logger receives operational messages (recovered panics, accept
	// retries). Nil uses the standard logger.
	Logger *log.Logger
}

// defaultDrainTimeout bounds Shutdown when Config.DrainTimeout is zero.
const defaultDrainTimeout = 10 * time.Second

// Server serves one engine over TCP.
type Server struct {
	eng *core.Engine
	cfg Config
	sem chan struct{} // admission tokens; nil = unlimited

	// baseCtx parents every statement context; canceled on forced
	// shutdown so in-flight queries abort instead of outliving the server.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	draining bool
	wg       sync.WaitGroup
}

// New creates a server around an engine with no limits configured.
func New(eng *core.Engine) *Server { return NewWith(eng, Config{}) }

// NewWith creates a server with the given robustness configuration.
func NewWith(eng *core.Engine, cfg Config) *Server {
	s := &Server{eng: eng, cfg: cfg, conns: make(map[net.Conn]struct{})}
	if cfg.MaxConcurrent > 0 {
		s.sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:21212") and serves until
// Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the bound listener address (useful with ":0").
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections on ln until Shutdown closes it. Temporary
// accept errors (e.g. file-descriptor exhaustion, transient network
// faults) are retried with exponential backoff instead of killing the
// accept loop.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Temporary() {
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else {
					backoff *= 2
					if backoff > time.Second {
						backoff = time.Second
					}
				}
				s.logf("server: temporary accept error (retrying in %v): %v", backoff, err)
				time.Sleep(backoff)
				continue
			}
			return err
		}
		backoff = 0
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Shutdown stops the server gracefully: it closes the listener, nudges
// idle connections, waits for in-flight statements to finish and flush
// their responses, and after the configured DrainTimeout force-closes
// whatever remains (canceling still-running queries).
func (s *Server) Shutdown() { s.ShutdownTimeout(s.cfg.DrainTimeout) }

// ShutdownTimeout is Shutdown with an explicit drain bound (zero selects
// the 10s default; negative waits indefinitely).
func (s *Server) ShutdownTimeout(drain time.Duration) {
	if drain == 0 {
		drain = defaultDrainTimeout
	}
	s.mu.Lock()
	s.closed = true
	s.draining = true
	if s.ln != nil {
		s.ln.Close()
	}
	// Wake handlers blocked reading the next request; handlers mid-execute
	// still flush their response before observing the expired deadline.
	now := time.Now()
	for c := range s.conns {
		c.SetReadDeadline(now)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var expired <-chan time.Time
	if drain > 0 {
		t := time.NewTimer(drain)
		defer t.Stop()
		expired = t.C
	}
	select {
	case <-done:
	case <-expired:
		s.logf("server: drain timeout (%v) elapsed; force-closing connections", drain)
		s.baseCancel()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	s.baseCancel()
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	// Protocol negotiation: sniff the first byte. 'G' opens the binary
	// handshake (wire.Hello); anything else is treated as a JSON-lines
	// peer, exactly as before the binary protocol existed — garbage then
	// gets the JSON loop's "bad request" diagnostic. A JSON request line
	// always starts '{' (or whitespace), never 'G', so the sniff cannot
	// misroute a legacy client.
	br := bufio.NewReaderSize(conn, 64<<10)
	if s.cfg.IdleTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	}
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] == 'G' {
		br.ReadByte()
		v, err := wire.ReadHello(br, 'G')
		if err != nil {
			// Garbage after 'G', or a peer that disconnected mid-handshake.
			// A diagnostic is only worth sending to a live peer.
			if errors.Is(err, wire.ErrBadMagic) {
				s.sendJSONError(conn, "unrecognized protocol: expected GRFusion binary hello or JSON-lines request")
			}
			return
		}
		if v > wire.ProtoVersion {
			// Answer with our version; the client decides whether to speak it.
			v = wire.ProtoVersion
		}
		s.serveBinary(conn, br, v)
		return
	}
	s.serveJSON(conn, br)
}

// sendJSONError writes one best-effort JSON-lines error response, for
// peers that failed negotiation (a JSON response is the only encoding an
// unknown peer plausibly parses).
func (s *Server) sendJSONError(conn net.Conn, msg string) {
	if s.cfg.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
	b, _ := json.Marshal(&Response{Error: msg})
	conn.Write(append(b, '\n'))
}

// serveJSON is the JSON-lines request loop, unchanged protocol-wise since
// the first server release: one request object per line, one response
// object per line, in order.
func (s *Server) serveJSON(conn net.Conn, br *bufio.Reader) {
	sc := bufio.NewScanner(br)
	// Start with the reader's modest buffer and let the scanner grow it on
	// demand up to the cap: eagerly allocating maxRequestBytes per
	// connection (as earlier releases did) burned 16 MiB per idle client.
	sc.Buffer(nil, maxRequestBytes)
	w := bufio.NewWriter(conn)
	enc := json.NewEncoder(w)
	send := func(resp *Response) bool {
		if s.cfg.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		if err := enc.Encode(resp); err != nil {
			return false
		}
		return w.Flush() == nil
	}
	for {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			// The current statement (if any) already flushed its response;
			// stop reading new requests so Shutdown can complete.
			return
		}
		if s.cfg.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		if !sc.Scan() {
			// A request line over the buffer cap is a client bug worth
			// diagnosing: answer with the limit before hanging up (the
			// stream cannot be re-synchronized mid-line).
			if errors.Is(sc.Err(), bufio.ErrTooLong) {
				send(&Response{Error: fmt.Sprintf(
					"request too large: one request line is limited to %d bytes", maxRequestBytes)})
			}
			return
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		resp := s.serveLine(line)
		if !send(&resp) {
			return
		}
	}
}

// serveLine decodes and executes one request line, converting a panic
// anywhere in the statement path into an error response so one poisoned
// query cannot take down the server.
func (s *Server) serveLine(line []byte) (resp Response) {
	defer func() {
		if r := recover(); r != nil {
			s.logf("server: recovered statement panic: %v\n%s", r, debug.Stack())
			resp = Response{Error: fmt.Sprintf("internal error: statement aborted by panic: %v", r)}
		}
	}()
	var req Request
	if err := json.Unmarshal(line, &req); err != nil {
		return Response{Error: fmt.Sprintf("bad request: %v", err)}
	}
	if req.Cmd != "" {
		return s.command(&req)
	}
	return s.execute(&req)
}

// command serves protocol commands. These never consume an admission
// token: "metrics" in particular must stay answerable while the server is
// shedding statements, or the operator loses exactly the signal that
// explains the overload.
func (s *Server) command(req *Request) Response {
	switch strings.ToLower(req.Cmd) {
	case "metrics":
		out := Response{Columns: []string{"name", "value"}}
		for _, kv := range s.eng.MetricsSnapshot() {
			out.Rows = append(out.Rows, []any{kv.Name, json.Number(strconv.FormatInt(kv.Value, 10))})
		}
		return out
	case "health":
		out := Response{Columns: []string{"name", "value"}}
		for _, p := range s.eng.Health().Pairs() {
			out.Rows = append(out.Rows, []any{p[0], p[1]})
		}
		return out
	default:
		return Response{Error: fmt.Sprintf("unknown command %q (supported: metrics, health)", req.Cmd)}
	}
}

func (s *Server) execute(req *Request) Response {
	res, ee := s.executeCore(req.Query, req.TimeoutMS)
	if ee != nil {
		return Response{Error: ee.msg, Retryable: ee.retryable, Degraded: ee.degraded}
	}
	out := Response{Columns: res.Columns, Affected: res.Affected}
	for _, row := range res.Rows {
		enc := make([]any, len(row))
		for i, v := range row {
			enc[i] = encodeValue(v)
		}
		out.Rows = append(out.Rows, enc)
	}
	return out
}

// execError is a failed statement plus its protocol flags, shared by the
// JSON and binary encodings of the error.
type execError struct {
	msg       string
	retryable bool
	degraded  bool
}

// admit takes an admission token, or returns the shed error. release is
// non-nil exactly when admission succeeded.
func (s *Server) admit() (release func(), ee *execError) {
	if s.sem == nil {
		return func() {}, nil
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	default:
		s.eng.Metrics().ShedAdmissions.Inc()
		return nil, &execError{
			msg:       fmt.Sprintf("server overloaded: %d statements already executing", cap(s.sem)),
			retryable: true,
		}
	}
}

// stmtContext derives the statement context: the server's QueryTimeout
// tightened by the client's timeout_ms.
func (s *Server) stmtContext(timeoutMS int64) (context.Context, context.CancelFunc) {
	ctx, cancel := s.baseCtx, context.CancelFunc(func() {})
	if s.cfg.QueryTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
	}
	if timeoutMS > 0 {
		prev := cancel
		var c2 context.CancelFunc
		ctx, c2 = context.WithTimeout(ctx, time.Duration(timeoutMS)*time.Millisecond)
		cancel = func() { c2(); prev() }
	}
	return ctx, cancel
}

// executeCore runs one statement under admission control and the
// statement deadline, returning the engine result in its typed form (the
// JSON and binary paths encode it differently).
func (s *Server) executeCore(query string, timeoutMS int64) (*core.Result, *execError) {
	// Admission control: shed instead of queueing — a shed statement never
	// started, so the client can retry safely.
	release, ee := s.admit()
	if ee != nil {
		return nil, ee
	}
	defer release()
	ctx, cancel := s.stmtContext(timeoutMS)
	defer cancel()
	res, err := s.eng.ExecuteContext(ctx, query)
	if err != nil {
		return nil, &execError{msg: err.Error(), degraded: errors.Is(err, core.ErrDegraded)}
	}
	return res, nil
}

func encodeValue(v types.Value) any {
	switch v.Kind {
	case types.KindNull:
		return nil
	case types.KindBool:
		return v.B
	case types.KindInt:
		return json.Number(v.String())
	case types.KindFloat:
		return v.F
	default:
		// Strings, and graph values rendered as text.
		return v.String()
	}
}
