// Package server exposes a GRFusion engine over TCP, mirroring the
// client/server deployment of the paper's host system (VoltDB). The wire
// protocol is newline-delimited JSON: one request object per line, one
// response object per line. The engine serializes statement execution
// internally, so any number of connections may be served concurrently.
//
// Request:  {"query": "SELECT ..."}
// Response: {"columns": [...], "rows": [[...], ...], "affected": 0}
//
//	or {"error": "..."}
//
// Values are encoded as their natural JSON types; BIGINTs survive
// round-trips via json.Number. Paths are rendered as their PathString.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"grfusion/internal/core"
	"grfusion/internal/types"
)

// Request is one statement submission.
type Request struct {
	Query string `json:"query"`
}

// Response is the outcome of one statement.
type Response struct {
	Columns  []string `json:"columns,omitempty"`
	Rows     [][]any  `json:"rows,omitempty"`
	Affected int      `json:"affected,omitempty"`
	Error    string   `json:"error,omitempty"`
}

// Server serves one engine over TCP.
type Server struct {
	eng *core.Engine

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// New creates a server around an engine.
func New(eng *core.Engine) *Server {
	return &Server{eng: eng, conns: make(map[net.Conn]struct{})}
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:21212") and serves until
// Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the bound listener address (useful with ":0").
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections on ln until Shutdown closes it.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Shutdown closes the listener and all connections and waits for handlers
// to drain.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	w := bufio.NewWriter(conn)
	enc := json.NewEncoder(w)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		var resp Response
		if err := json.Unmarshal(line, &req); err != nil {
			resp.Error = fmt.Sprintf("bad request: %v", err)
		} else {
			resp = s.execute(&req)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) execute(req *Request) Response {
	res, err := s.eng.Execute(req.Query)
	if err != nil {
		return Response{Error: err.Error()}
	}
	out := Response{Columns: res.Columns, Affected: res.Affected}
	for _, row := range res.Rows {
		wire := make([]any, len(row))
		for i, v := range row {
			wire[i] = encodeValue(v)
		}
		out.Rows = append(out.Rows, wire)
	}
	return out
}

func encodeValue(v types.Value) any {
	switch v.Kind {
	case types.KindNull:
		return nil
	case types.KindBool:
		return v.B
	case types.KindInt:
		return json.Number(v.String())
	case types.KindFloat:
		return v.F
	default:
		// Strings, and graph values rendered as text.
		return v.String()
	}
}
