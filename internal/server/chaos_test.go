package server

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"grfusion/internal/core"
	"grfusion/internal/exec"
	"grfusion/internal/faultnet"
)

// TestChaosSoak drives the server through a network-fault storm under the
// race detector: every client connection suffers injected delays, partial
// writes, truncated payloads, mid-stream resets, and transient accept
// errors, while some statements panic, some exceed their deadline, and
// some are shed by admission control. The server must never crash, never
// deadlock, and still answer a well-formed statement when the storm ends.
//
// GRF_SOAK extends the storm duration (seconds), e.g. GRF_SOAK=30 in the
// CI chaos job; the default keeps `go test ./...` fast.
func TestChaosSoak(t *testing.T) {
	duration := 1500 * time.Millisecond
	if s := os.Getenv("GRF_SOAK"); s != "" {
		var secs int
		if _, err := fmt.Sscanf(s, "%d", &secs); err == nil && secs > 0 {
			duration = time.Duration(secs) * time.Second
		}
	}

	// The engine logs every recovered panic stack through the standard
	// logger; hundreds of injected panics would swamp the test output.
	prevOut := log.Writer()
	log.SetOutput(io.Discard)
	defer log.SetOutput(prevOut)

	eng := core.New(core.Options{Workers: 2})
	srv := NewWith(eng, Config{
		MaxConcurrent: 4,
		QueryTimeout:  500 * time.Millisecond,
		IdleTimeout:   2 * time.Second,
		WriteTimeout:  2 * time.Second,
		DrainTimeout:  10 * time.Second,
		Logger:        quietLogger(),
	})
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := faultnet.Wrap(inner, faultnet.Options{
		Seed:           1,
		MaxDelay:       500 * time.Microsecond,
		WriteChunk:     7,
		ResetProb:      0.02,
		TruncateProb:   0.02,
		AcceptErrEvery: 5,
	})
	go srv.Serve(ln)
	addr := inner.Addr().String()

	// Seed schema and data over a dedicated, fault-free path: the engine
	// API directly (the storm only matters for the serving path).
	seed := []string{
		`CREATE TABLE V (vid BIGINT PRIMARY KEY)`,
		`CREATE TABLE E (eid BIGINT PRIMARY KEY, a BIGINT, b BIGINT)`,
		`CREATE TABLE Boom (a BIGINT)`,
		`CREATE TABLE Rows (id BIGINT PRIMARY KEY, v BIGINT)`,
	}
	for _, q := range seed {
		if _, err := eng.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	eid := 0
	for a := 1; a <= 8; a++ {
		if _, err := eng.Execute(fmt.Sprintf(`INSERT INTO V VALUES (%d)`, a)); err != nil {
			t.Fatal(err)
		}
		for b := 1; b <= 8; b++ {
			if a == b {
				continue
			}
			eid++
			if _, err := eng.Execute(fmt.Sprintf(`INSERT INTO E VALUES (%d,%d,%d)`, eid, a, b)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := eng.Execute(`CREATE DIRECTED GRAPH VIEW K
		VERTEXES(ID = vid) FROM V
		EDGES(ID = eid, FROM = a, TO = b) FROM E`); err != nil {
		t.Fatal(err)
	}

	// Injected operator panic: any statement scanning Boom dies inside the
	// executor; the server must convert that into an error response.
	exec.DebugPanicTable = "Boom"
	defer func() { exec.DebugPanicTable = "" }()

	statements := []string{
		`SELECT COUNT(*) FROM V`,
		`SELECT COUNT(*) FROM E WHERE a < 4`,
		`SELECT PS.PathString FROM K.Paths PS WHERE PS.StartVertex.Id = 1 AND PS.Length <= 2 LIMIT 5`,
		`SELECT COUNT(*) FROM K.Paths PS HINT(DFS, ALLPATHS) WHERE PS.StartVertex.Id = 2`, // hits QueryTimeout
		`SELECT * FROM Boom`,           // injected panic
		`SELECT * FROM NoSuchTable`,    // plain error
		`this is not even SQL`,         // parse error
		`INSERT INTO Rows VALUES (-1)`, // constraint/arity error
	}

	var (
		wg        sync.WaitGroup
		ops       atomic.Int64
		successes atomic.Int64
		insertID  atomic.Int64
	)
	deadline := time.Now().Add(duration)
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			var c *Client
			defer func() {
				if c != nil {
					c.Close()
				}
			}()
			for time.Now().Before(deadline) {
				if c == nil {
					var err error
					c, err = DialWith(addr, Options{
						ConnectTimeout: 2 * time.Second,
						RequestTimeout: 2 * time.Second,
						MaxRetries:     2,
						RetryBase:      5 * time.Millisecond,
					})
					if err != nil {
						time.Sleep(5 * time.Millisecond)
						continue
					}
				}
				var q string
				if rng.Intn(4) == 0 {
					q = fmt.Sprintf(`INSERT INTO Rows VALUES (%d, %d)`, insertID.Add(1), rng.Intn(1000))
				} else {
					q = statements[rng.Intn(len(statements))]
				}
				ops.Add(1)
				if _, err := c.Exec(q); err != nil {
					var se *ServerError
					if asServerError(err, &se) {
						// An orderly server-side error: the connection is
						// still synchronized and reusable.
						continue
					}
					// Wire-level failure (injected fault): reconnect.
					c.Close()
					c = nil
					continue
				}
				successes.Add(1)
			}
		}(w)
	}
	wg.Wait()

	if ops.Load() == 0 {
		t.Fatal("soak performed no operations")
	}
	if successes.Load() == 0 {
		t.Fatal("no statement ever succeeded through the fault storm")
	}
	t.Logf("soak: %d ops, %d clean successes over %v", ops.Load(), successes.Load(), duration)

	// The storm is over; the server must still serve. The listener still
	// injects faults, so allow a few attempts.
	exec.DebugPanicTable = ""
	healthy := false
	for attempt := 0; attempt < 30 && !healthy; attempt++ {
		c, err := DialWith(addr, Options{ConnectTimeout: 2 * time.Second, RequestTimeout: 5 * time.Second})
		if err != nil {
			continue
		}
		res, err := c.Exec(`SELECT COUNT(*) FROM V`)
		c.Close()
		if err == nil && len(res.Rows) == 1 && res.Rows[0][0].I == 8 {
			healthy = true
		}
	}
	if !healthy {
		t.Fatal("server unhealthy after the fault storm")
	}

	// And it still shuts down gracefully.
	done := make(chan struct{})
	go func() {
		srv.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Shutdown hung after the fault storm")
	}
}

// TestChaosServerNeverWedgesOnTornRequests hammers the raw wire with
// garbage fragments and torn frames; the server must keep accepting and
// serving clean connections throughout.
func TestChaosTornFrames(t *testing.T) {
	_, addr := startServerWith(t, Config{IdleTimeout: time.Second, Logger: quietLogger()})
	// Torn and garbage writers.
	for i := 0; i < 20; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		switch i % 4 {
		case 0:
			conn.Write([]byte(`{"query": "SELECT`)) // torn mid-frame, no newline
		case 1:
			conn.Write([]byte("\x00\xff\xfe garbage\n"))
		case 2:
			conn.Write([]byte(`{"query": 42}` + "\n")) // wrong type
		case 3:
			// half a JSON string then an abrupt close
			conn.Write([]byte(`{"query": "SELECT * FR`))
		}
		conn.Close()
	}
	// A clean client is unaffected.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`SHOW TABLES`); err != nil {
		t.Fatalf("clean connection failed amid torn frames: %v", err)
	}
}
