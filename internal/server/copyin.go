package server

import (
	"errors"
	"fmt"

	"grfusion/internal/types"
	"grfusion/internal/wire"
)

// CopyIn is a COPY-style streaming bulk load: the client pushes row
// batches down the wire without waiting for per-batch acks while the
// server feeds them into a single engine bulk load that publishes one
// MVCC version at the end. This is the fast path for graph construction —
// loading millions of edges through it costs one round trip at begin and
// one at end, with every batch in between pipelined.
//
// While a CopyIn is open it owns the connection: other requests on the
// same client return an error until Close. Batches are applied
// atomically; on a mid-stream failure the server keeps the batches that
// already applied (exactly what crash recovery would reconstruct) and
// Close reports the error with the applied row count.
type CopyIn struct {
	c      *Client
	sent   int
	closed bool
}

// CopyIn opens a bulk load into table. cols names the supplied columns
// (nil means the full schema in order); expectRows, when positive,
// presizes server-side storage for the incoming volume. Requires the
// binary protocol.
func (c *Client) CopyIn(table string, cols []string, expectRows int) (*CopyIn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.binary {
		return nil, errors.New("COPY bulk load requires the binary protocol (server too old?)")
	}
	if err := c.checkUsableLocked(); err != nil {
		return nil, err
	}
	payload := wire.AppendCopyBegin(nil, table, cols, expectRows)
	// The begin is a full round trip: the server validates the table and
	// columns and takes the bulk-load locks before we stream anything.
	res, err := c.binRoundTripLocked(wire.MsgCopyBegin, payload, c.opts.RequestTimeout)
	if err != nil {
		return nil, err
	}
	_ = res
	c.copying = true
	return &CopyIn{c: c}, nil
}

// Send streams one batch of rows. It does not wait for a server
// response — errors surface at Close (or immediately if the transport
// itself fails). Larger batches amortize framing; a few thousand rows per
// batch is a good default.
func (ci *CopyIn) Send(rows []types.Row) error {
	if len(rows) == 0 {
		return nil
	}
	c := ci.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if ci.closed {
		return errors.New("bulk load is closed")
	}
	if c.broken != nil {
		return fmt.Errorf("connection poisoned by earlier failure (reconnect required): %w", c.broken)
	}
	c.armDeadlineLocked(c.opts.RequestTimeout)
	// Batches flush straight through: the write buffer only delays frames
	// smaller than itself, and COPY batches are typically much larger.
	if err := c.sendFrameLocked(wire.MsgCopyData, wire.AppendCopyData(nil, rows), true); err != nil {
		return err
	}
	ci.sent += len(rows)
	return nil
}

// Rows returns how many rows have been streamed so far.
func (ci *CopyIn) Rows() int {
	ci.c.mu.Lock()
	defer ci.c.mu.Unlock()
	return ci.sent
}

// Close ends the stream and waits for the server's verdict: the number
// of rows applied, or the first batch failure (as a *ServerError naming
// how far the load got). Close releases the connection for normal use.
func (ci *CopyIn) Close() (*Result, error) {
	c := ci.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if ci.closed {
		return nil, errors.New("bulk load is closed")
	}
	ci.closed = true
	c.copying = false
	if c.broken != nil {
		return nil, fmt.Errorf("connection poisoned by earlier failure (reconnect required): %w", c.broken)
	}
	return c.binRoundTripLocked(wire.MsgCopyEnd, nil, c.opts.RequestTimeout)
}
