package server

import (
	"errors"
	"sync"
)

// Pool is a health-aware client connection pool. Checkout hands out an
// idle connection when one exists and dials otherwise; checkin returns
// healthy connections to the idle set and discards poisoned ones, so a
// connection that died mid-exchange is replaced instead of resurfacing to
// fail someone else's request. Concurrent workloads (each goroutine
// holding a connection for one request) get connection reuse without a
// dial per request and without sharing one serialized connection.
type Pool struct {
	addr string
	opts Options
	// max bounds total connections (idle + checked out); 0 means
	// unbounded.
	max int

	mu     sync.Mutex
	idle   []*Client
	out    int // checked-out count
	closed bool
	wait   chan struct{} // closed-and-replaced broadcast when a slot frees
}

// NewPool creates a pool dialing addr with opts. maxConns bounds the
// total number of live connections (0 = unbounded); when the bound is
// reached, Get blocks until a connection is returned.
func NewPool(addr string, opts Options, maxConns int) *Pool {
	return &Pool{addr: addr, opts: opts, max: maxConns, wait: make(chan struct{})}
}

// ErrPoolClosed reports Get on a closed pool.
var ErrPoolClosed = errors.New("connection pool is closed")

// Get checks out a connection, dialing a fresh one when the idle set is
// empty. Idle connections that were poisoned while checked in (e.g. by a
// peer reset) are discarded, not handed out.
func (p *Pool) Get() (*Client, error) {
	p.mu.Lock()
	for {
		if p.closed {
			p.mu.Unlock()
			return nil, ErrPoolClosed
		}
		for len(p.idle) > 0 {
			c := p.idle[len(p.idle)-1]
			p.idle = p.idle[:len(p.idle)-1]
			if c.Broken() {
				c.Close()
				continue
			}
			p.out++
			p.mu.Unlock()
			return c, nil
		}
		if p.max <= 0 || p.out+len(p.idle) < p.max {
			p.out++ // reserve the slot while dialing outside the lock
			p.mu.Unlock()
			c, err := DialWith(p.addr, p.opts)
			if err != nil {
				p.mu.Lock()
				p.out--
				p.notifyLocked()
				p.mu.Unlock()
				return nil, err
			}
			return c, nil
		}
		// At capacity: wait for a Put/discard to free a slot.
		ch := p.wait
		p.mu.Unlock()
		<-ch
		p.mu.Lock()
	}
}

// Put returns a connection to the pool. Poisoned connections are closed
// and dropped — their slot frees for a fresh dial.
func (p *Pool) Put(c *Client) {
	if c == nil {
		return
	}
	p.mu.Lock()
	p.out--
	if p.closed || c.Broken() {
		p.mu.Unlock()
		c.Close()
		p.mu.Lock()
	} else {
		p.idle = append(p.idle, c)
	}
	p.notifyLocked()
	p.mu.Unlock()
}

// notifyLocked wakes every Get blocked on capacity.
func (p *Pool) notifyLocked() {
	close(p.wait)
	p.wait = make(chan struct{})
}

// Exec checks out a connection, runs one statement, and returns the
// connection — the convenience path for sporadic callers.
func (p *Pool) Exec(query string) (*Result, error) {
	c, err := p.Get()
	if err != nil {
		return nil, err
	}
	defer p.Put(c)
	return c.Exec(query)
}

// Stats reports the pool's current occupancy.
func (p *Pool) Stats() (idle, checkedOut int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle), p.out
}

// Close closes every idle connection and rejects future Gets.
// Checked-out connections are closed as they are returned.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	for _, c := range p.idle {
		c.Close()
	}
	p.idle = nil
	p.notifyLocked()
}
