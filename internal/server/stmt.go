package server

import (
	"errors"
	"fmt"
	"time"

	"grfusion/internal/types"
	"grfusion/internal/wire"
)

// Stmt is a statement prepared server-side and executed by id — the
// VoltDB stored-procedure model over the wire: parse and plan once, then
// steady-state executions carry only an id and bound parameters. Requires
// the binary protocol.
type Stmt struct {
	c       *Client
	id      uint64
	kind    byte // wire.PreparedSelect or wire.PreparedDML
	nparams int
	cols    []string
	closed  bool
}

// Prepare compiles a parameterized statement (SELECT or
// INSERT/UPDATE/DELETE with `?` placeholders) on the server.
func (c *Client) Prepare(query string) (*Stmt, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.binary {
		return nil, errors.New("prepared statements require the binary protocol (server too old?)")
	}
	if err := c.checkUsableLocked(); err != nil {
		return nil, err
	}
	c.armDeadlineLocked(c.opts.RequestTimeout)
	if err := c.sendFrameLocked(wire.MsgPrepare, wire.AppendString(nil, query), true); err != nil {
		return nil, err
	}
	kind, body, err := c.readFrameLocked()
	if err != nil {
		return nil, err
	}
	if kind != wire.MsgPrepared {
		// MsgError decodes into a *ServerError; anything else poisons.
		_, err := c.decodeResponseLocked(kind, body)
		if err == nil {
			err = fmt.Errorf("receive: unexpected response frame kind 0x%02x", kind)
			c.broken = err
		}
		return nil, err
	}
	id, pkind, nparams, cols, derr := wire.DecodePrepared(body)
	if derr != nil {
		c.broken = derr
		return nil, fmt.Errorf("receive: %w", derr)
	}
	return &Stmt{c: c, id: id, kind: pkind, nparams: nparams, cols: cols}, nil
}

// NumParams returns the number of `?` placeholders.
func (s *Stmt) NumParams() int { return s.nparams }

// Columns returns the result column names (SELECT statements only).
func (s *Stmt) Columns() []string { return s.cols }

// Exec executes the prepared statement with the given parameter values,
// under the client's RequestTimeout.
func (s *Stmt) Exec(params ...types.Value) (*Result, error) {
	return s.ExecTimeout(s.c.opts.RequestTimeout, params...)
}

// ExecTimeout is Exec with an explicit round-trip bound.
func (s *Stmt) ExecTimeout(timeout time.Duration, params ...types.Value) (*Result, error) {
	return s.c.withRetry(func() (*Result, error) {
		s.c.mu.Lock()
		defer s.c.mu.Unlock()
		if s.closed {
			return nil, errors.New("prepared statement is closed")
		}
		payload := wire.AppendExecPrepared(nil, s.id, timeoutToMS(timeout), params)
		return s.c.binRoundTripLocked(wire.MsgExecPrepared, payload, timeout)
	})
}

// Close frees the statement server-side.
func (s *Stmt) Close() error {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.c.broken != nil {
		return nil // the connection is gone; the server will reap it
	}
	_, err := s.c.binRoundTripLocked(wire.MsgClosePrepared, wire.AppendUvarint(nil, s.id), s.c.opts.RequestTimeout)
	return err
}
