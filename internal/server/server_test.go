package server

import (
	"net"
	"strings"
	"sync"
	"testing"

	"grfusion/internal/core"
	"grfusion/internal/types"
)

// startServer brings up a server on an ephemeral port and returns a
// connected client.
func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	eng := core.New(core.Options{})
	srv := New(eng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Shutdown)
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func TestRoundTripDDLDMLQuery(t *testing.T) {
	_, c := startServer(t)
	for _, q := range []string{
		`CREATE TABLE T (a BIGINT PRIMARY KEY, s VARCHAR, f DOUBLE, b BOOLEAN)`,
		`INSERT INTO T VALUES (1, 'x', 1.5, true), (2, NULL, 2.5, false)`,
	} {
		if _, err := c.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	res, err := c.Exec(`SELECT a, s, f, b FROM T ORDER BY a`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(res.Columns) != 4 {
		t.Fatalf("shape: %+v", res)
	}
	r0 := res.Rows[0]
	if r0[0].Kind != types.KindInt || r0[0].I != 1 {
		t.Errorf("int round trip: %v", r0[0])
	}
	if r0[1].S != "x" || r0[2].F != 1.5 || !r0[3].B {
		t.Errorf("row: %v", r0)
	}
	if !res.Rows[1][1].IsNull() {
		t.Errorf("null round trip: %v", res.Rows[1][1])
	}
}

func TestGraphQueryOverTheWire(t *testing.T) {
	_, c := startServer(t)
	setup := []string{
		`CREATE TABLE V (vid BIGINT PRIMARY KEY)`,
		`CREATE TABLE E (eid BIGINT PRIMARY KEY, a BIGINT, b BIGINT)`,
		`INSERT INTO V VALUES (1),(2),(3)`,
		`INSERT INTO E VALUES (1,1,2),(2,2,3)`,
		`CREATE DIRECTED GRAPH VIEW G VERTEXES(ID=vid) FROM V EDGES(ID=eid, FROM=a, TO=b) FROM E`,
	}
	for _, q := range setup {
		if _, err := c.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	res, err := c.Exec(`SELECT PS.PathString FROM G.Paths PS WHERE PS.StartVertex.Id = 1 AND PS.EndVertex.Id = 3 LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "1-[1]->2-[2]->3" {
		t.Fatalf("path over the wire: %+v", res.Rows)
	}
}

func TestErrorPropagation(t *testing.T) {
	_, c := startServer(t)
	_, err := c.Exec(`SELECT * FROM Ghost`)
	if err == nil || !strings.Contains(err.Error(), "Ghost") {
		t.Fatalf("error lost: %v", err)
	}
	// The connection stays usable after an error.
	if _, err := c.Exec(`CREATE TABLE T (a BIGINT)`); err != nil {
		t.Fatalf("connection dead after error: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, c0 := startServer(t)
	if _, err := c0.Exec(`CREATE TABLE T (a BIGINT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()
	const clients = 8
	const perClient = 20
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < perClient; j++ {
				q := `INSERT INTO T VALUES (` + types.NewInt(int64(base*1000+j)).String() + `)`
				if _, err := c.Exec(q); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res, err := c0.Exec(`SELECT COUNT(*) FROM T`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != clients*perClient {
		t.Fatalf("rows: %v", res.Rows[0][0])
	}
}

func TestShutdownClosesConnections(t *testing.T) {
	srv, c := startServer(t)
	srv.Shutdown()
	if _, err := c.Exec(`SELECT 1 FROM T`); err == nil {
		t.Fatal("exec succeeded after shutdown")
	}
	// Serve after Shutdown refuses.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(ln); err == nil {
		t.Fatal("Serve after Shutdown accepted")
	}
}

func TestMalformedRequest(t *testing.T) {
	srv, _ := startServer(t)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf[:n]), "bad request") {
		t.Fatalf("response: %s", buf[:n])
	}
}
