package server

import (
	"encoding/json"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"grfusion/internal/core"
	"grfusion/internal/faultfs"
	"grfusion/internal/faultnet"
	"grfusion/internal/wal"
)

// startDegradableServer brings up a server over a durable engine whose
// storage layer is a faultfs.Faulty, behind a faultnet listener (mild
// schedule: delays and chunked writes, no resets, so round trips stay
// countable). Returns the engine, the injector and the address.
func startDegradableServer(t *testing.T) (*core.Engine, *faultfs.Faulty, string) {
	t.Helper()
	ffs := faultfs.NewFaulty(nil, 99)
	var opts core.Options
	opts.Durability = core.Durability{
		Dir: t.TempDir(), Fsync: wal.FsyncAlways, FS: ffs,
		HealBase: time.Millisecond, HealMax: 8 * time.Millisecond,
	}
	eng, _, err := core.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWith(eng, Config{Logger: quietLogger()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fln := faultnet.Wrap(ln, faultnet.Options{
		Seed:       99,
		MaxDelay:   200 * time.Microsecond,
		WriteChunk: 7,
	})
	go srv.Serve(fln)
	t.Cleanup(srv.Shutdown)
	return eng, ffs, fln.Addr().String()
}

// TestDegradedWriteNotRetried is the retry-policy classification test:
// a client configured to retry shed statements five times must submit a
// degraded-mode write exactly once — the rejection is terminal, so there
// is no retry storm against a sick disk. Round trips are counted on the
// server via the by-kind statement counters.
func TestDegradedWriteNotRetried(t *testing.T) {
	_, ffs, addr := startDegradableServer(t)
	c, err := DialWith(addr, Options{MaxRetries: 5, RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`CREATE TABLE T (a BIGINT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	base, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}

	// Break the disk: the next write degrades the engine.
	ffs.SetRate(faultfs.OpWrite, 1)
	ffs.SetRate(faultfs.OpTruncate, 1)
	_, err = c.Exec(`INSERT INTO T VALUES (1)`)
	var se *ServerError
	if err == nil || !asServerError(err, &se) {
		t.Fatalf("degraded insert: err = %v, want *ServerError", err)
	}
	if !se.Degraded {
		t.Fatalf("degraded insert not classified: %+v", se)
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if got := m["statements.insert"] - base["statements.insert"]; got != 1 {
		t.Fatalf("degrading insert reached the server %d times, want exactly 1", got)
	}
	if got := m["durability.degraded_writes"]; got != 1 {
		t.Fatalf("durability.degraded_writes = %d, want 1", got)
	}

	// A second write while degraded: also exactly one round trip.
	if _, err := c.Exec(`INSERT INTO T VALUES (2)`); err == nil || !asServerError(err, &se) || !se.Degraded {
		t.Fatalf("second degraded insert: err = %v, want degraded ServerError", err)
	}
	m, err = c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if got := m["statements.insert"] - base["statements.insert"]; got != 2 {
		t.Fatalf("two degraded inserts reached the server %d times, want exactly 2", got)
	}
	if got := m["durability.degraded_writes"]; got != 2 {
		t.Fatalf("durability.degraded_writes = %d, want 2", got)
	}

	// After heal the same client writes normally — the terminal error was
	// about the statement, not the connection.
	ffs.Calm()
	waitClientHealthy(t, c, 5*time.Second)
	if _, err := c.Exec(`INSERT INTO T VALUES (1)`); err != nil {
		t.Fatalf("insert after heal: %v", err)
	}
}

func waitClientHealthy(t *testing.T, c *Client, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		h, err := c.Health()
		if err != nil {
			t.Fatalf("health command: %v", err)
		}
		if h["state"] == "healthy" {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("server did not report healthy within %v", timeout)
}

// TestHealthSurfacesAgree drives one degrade → heal cycle and checks all
// four health surfaces — SHOW HEALTH over SQL, the health wire command,
// GET /healthz, GET /readyz — against each other at every stage.
func TestHealthSurfacesAgree(t *testing.T) {
	eng, ffs, addr := startDegradableServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hs := httptest.NewServer(MetricsMux(eng))
	defer hs.Close()

	showHealth := func() map[string]string {
		t.Helper()
		res, err := c.Exec(`SHOW HEALTH`)
		if err != nil {
			t.Fatalf("SHOW HEALTH: %v", err)
		}
		out := make(map[string]string, len(res.Rows))
		for _, r := range res.Rows {
			out[r[0].S] = r[1].S
		}
		return out
	}
	healthz := func() map[string]string {
		t.Helper()
		resp, err := hs.Client().Get(hs.URL + "/healthz")
		if err != nil {
			t.Fatalf("GET /healthz: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("/healthz status = %d, want 200 (liveness never fails)", resp.StatusCode)
		}
		var out map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("/healthz body: %v", err)
		}
		return out
	}
	readyzStatus := func() int {
		t.Helper()
		resp, err := hs.Client().Get(hs.URL + "/readyz")
		if err != nil {
			t.Fatalf("GET /readyz: %v", err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// expect checks one stage on all four surfaces. While faults are
	// active the engine flips between degraded and healing as probes run,
	// so the assertion is on readiness, not the exact state string.
	expect := func(stage string, ready bool) {
		t.Helper()
		wantReady := "false"
		if ready {
			wantReady = "true"
		}
		for name, m := range map[string]map[string]string{"SHOW HEALTH": showHealth(), "wire health": mustHealth(t, c), "/healthz": healthz()} {
			if m["ready"] != wantReady {
				t.Fatalf("%s: %s reports ready=%q, want %q (state %q)", stage, name, m["ready"], wantReady, m["state"])
			}
			if (m["state"] == "healthy") != ready {
				t.Fatalf("%s: %s reports state=%q, ready should be %v", stage, name, m["state"], ready)
			}
		}
		wantStatus := 200
		if !ready {
			wantStatus = 503
		}
		if got := readyzStatus(); got != wantStatus {
			t.Fatalf("%s: /readyz status = %d, want %d", stage, got, wantStatus)
		}
	}

	if _, err := c.Exec(`CREATE TABLE T (a BIGINT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	expect("healthy", true)

	ffs.SetRate(faultfs.OpWrite, 1)
	ffs.SetRate(faultfs.OpTruncate, 1)
	var se *ServerError
	if _, err := c.Exec(`INSERT INTO T VALUES (1)`); err == nil || !asServerError(err, &se) || !se.Degraded {
		t.Fatalf("degrading insert: err = %v, want degraded ServerError", err)
	}
	expect("degraded", false)

	ffs.Calm()
	waitClientHealthy(t, c, 5*time.Second)
	expect("healed", true)
	if _, err := c.Exec(`INSERT INTO T VALUES (1)`); err != nil {
		t.Fatalf("insert after heal: %v", err)
	}
}

func mustHealth(t *testing.T, c *Client) map[string]string {
	t.Helper()
	h, err := c.Health()
	if err != nil {
		t.Fatalf("health command: %v", err)
	}
	return h
}
