package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"runtime/debug"
	"strings"
	"time"

	"grfusion/internal/core"
	"grfusion/internal/types"
	"grfusion/internal/wire"
)

// The binary protocol handler: after the hello exchange the connection
// becomes a pipelined frame stream. A reader goroutine pulls frames off
// the socket into a bounded channel while a single executor drains it in
// order, so a client may send many requests without waiting for
// responses — responses always come back in request order (the executor
// is the per-connection serialization point) and the shared output
// writer is flushed only when the pipeline runs dry, batching many small
// responses into few syscalls.

// binPipelineDepth bounds how many undispatched frames a connection may
// buffer. Deep enough to keep a pipelining client busy, shallow enough
// that a COPY stream of 16 MiB frames cannot balloon memory.
const binPipelineDepth = 64

// binItem is one unit of work handed from the reader to the executor.
type binItem struct {
	kind    byte
	payload []byte
	// tooLarge is the declared length of an oversized frame whose payload
	// was discarded; the executor answers it with a diagnostic.
	tooLarge int
	// err is a terminal read failure; always the last item delivered.
	err error
}

// preparedEntry is one server-side prepared statement; exactly one of
// sel/dml is set.
type preparedEntry struct {
	sel *core.Prepared
	dml *core.PreparedDML
}

// copyState is an open COPY bulk load.
type copyState struct {
	bl      *core.BulkLoad
	width   int
	release func() // admission token, held for the load's duration
	// failErr records the first failed batch; once set, subsequent
	// MsgCopyData frames are discarded and MsgCopyEnd reports the error.
	failErr error
	applied int // rows applied before the failure
}

func (s *Server) serveBinary(conn net.Conn, br *bufio.Reader, v byte) {
	bw := bufio.NewWriterSize(conn, 64<<10)
	flush := func() bool {
		if bw.Buffered() == 0 {
			return true
		}
		if s.cfg.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		return bw.Flush() == nil
	}
	// Handshake ack: our protocol version (already capped by the caller).
	if err := wire.WriteFrame(bw, wire.MsgHello, []byte{v}); err != nil || !flush() {
		return
	}

	// Reader goroutine: socket → bounded channel. It owns the read
	// deadline; Shutdown wakes it by expiring that deadline.
	done := make(chan struct{})
	defer close(done)
	frames := make(chan binItem, binPipelineDepth)
	go func() {
		defer close(frames)
		for {
			if s.cfg.IdleTimeout > 0 {
				conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
			}
			var it binItem
			kind, payload, err := wire.ReadFrame(br)
			var tooBig *wire.FrameTooLargeError
			switch {
			case errors.As(err, &tooBig):
				// The length prefix was valid, so the stream stays
				// synchronized: skip the payload and let the executor answer
				// with a diagnostic in order.
				if derr := wire.DiscardFrame(br, tooBig.Len); derr != nil {
					it = binItem{err: derr}
				} else {
					it = binItem{tooLarge: tooBig.Len}
				}
			case err != nil:
				it = binItem{err: err}
			default:
				it = binItem{kind: kind, payload: payload}
			}
			select {
			case frames <- it:
			case <-done:
				return
			}
			if it.err != nil {
				return
			}
		}
	}()

	st := &binConn{s: s, prepared: make(map[uint64]preparedEntry)}
	// Whatever ends this connection — clean close, write failure, drain —
	// an open bulk load must be closed so the engine write lock and the
	// admission token it holds are released.
	defer st.abandonCopy()

	for {
		var it binItem
		var ok bool
		select {
		case it, ok = <-frames:
		default:
			// Pipeline ran dry: flush buffered responses before blocking.
			if !flush() {
				return
			}
			it, ok = <-frames
		}
		if !ok {
			flush()
			return
		}
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			flush()
			return
		}
		if it.err != nil {
			// CRC mismatch or malformed framing is terminal (the stream may
			// be desynchronized) but worth one best-effort diagnostic.
			if errors.Is(it.err, wire.ErrBadCRC) || errors.Is(it.err, wire.ErrBadMessage) {
				p := wire.AppendError(nil, fmt.Sprintf("bad frame: %v", it.err), false, false)
				wire.WriteFrame(bw, wire.MsgError, p)
			}
			flush()
			return
		}
		if it.tooLarge > 0 {
			p := wire.AppendError(nil, fmt.Sprintf(
				"request too large: one frame is limited to %d bytes (got %d)",
				wire.MaxFrameBytes, it.tooLarge), false, false)
			if err := wire.WriteFrame(bw, wire.MsgError, p); err != nil {
				return
			}
			continue
		}
		if err := st.dispatch(bw, it.kind, it.payload); err != nil {
			return
		}
	}
}

// binConn is the per-connection binary protocol state.
type binConn struct {
	s        *Server
	prepared map[uint64]preparedEntry
	nextID   uint64
	copy     *copyState
}

// abandonCopy closes an open bulk load without reporting (used when the
// connection dies mid-COPY): applied batches stay applied, exactly as a
// crash before MsgCopyEnd would leave them after WAL replay.
func (c *binConn) abandonCopy() {
	if c.copy == nil {
		return
	}
	if c.copy.failErr == nil {
		c.copy.bl.Close()
	}
	c.copy.release()
	c.copy = nil
}

// dispatch executes one frame and writes its response (if the kind has
// one) to bw. The returned error is terminal for the connection; protocol
// and statement errors are reported in-band as MsgError frames.
func (c *binConn) dispatch(bw *bufio.Writer, kind byte, payload []byte) (err error) {
	// Panic isolation, mirroring serveLine: one poisoned statement becomes
	// an error response, not a dead server.
	defer func() {
		if r := recover(); r != nil {
			c.s.logf("server: recovered statement panic: %v\n%s", r, debug.Stack())
			p := wire.AppendError(nil, fmt.Sprintf("internal error: statement aborted by panic: %v", r), false, false)
			err = wire.WriteFrame(bw, wire.MsgError, p)
		}
	}()
	switch kind {
	case wire.MsgQuery:
		query, timeoutMS, derr := wire.DecodeQuery(payload)
		if derr != nil {
			return c.sendError(bw, &execError{msg: fmt.Sprintf("bad request: %v", derr)})
		}
		res, ee := c.s.executeCore(query, timeoutMS)
		if ee != nil {
			return c.sendError(bw, ee)
		}
		return c.sendResult(bw, &wire.Result{Columns: res.Columns, Rows: res.Rows, Affected: res.Affected})

	case wire.MsgCommand:
		cmd, rest, derr := wire.DecodeString(payload)
		if derr != nil || len(rest) != 0 {
			return c.sendError(bw, &execError{msg: "bad request: malformed command payload"})
		}
		res, ee := c.s.commandCore(cmd)
		if ee != nil {
			return c.sendError(bw, ee)
		}
		return c.sendResult(bw, res)

	case wire.MsgPrepare:
		return c.prepare(bw, payload)

	case wire.MsgExecPrepared:
		return c.execPrepared(bw, payload)

	case wire.MsgClosePrepared:
		id, rest, derr := wire.DecodeUvarint(payload)
		if derr != nil || len(rest) != 0 {
			return c.sendError(bw, &execError{msg: "bad request: malformed close payload"})
		}
		if _, ok := c.prepared[id]; !ok {
			return c.sendError(bw, &execError{msg: fmt.Sprintf("unknown prepared statement id %d", id)})
		}
		delete(c.prepared, id)
		return c.sendResult(bw, &wire.Result{})

	case wire.MsgCopyBegin:
		return c.copyBegin(bw, payload)

	case wire.MsgCopyData:
		// Not answered: the COPY stream is pipelined, errors surface at
		// MsgCopyEnd (with how far the load got).
		c.copyData(payload)
		return nil

	case wire.MsgCopyEnd:
		return c.copyEnd(bw)

	default:
		return c.sendError(bw, &execError{msg: fmt.Sprintf("unexpected message kind 0x%02x", kind)})
	}
}

func (c *binConn) sendResult(bw *bufio.Writer, r *wire.Result) error {
	return wire.WriteFrame(bw, wire.MsgResult, wire.AppendResult(nil, r))
}

func (c *binConn) sendError(bw *bufio.Writer, ee *execError) error {
	return wire.WriteFrame(bw, wire.MsgError, wire.AppendError(nil, ee.msg, ee.retryable, ee.degraded))
}

func (c *binConn) prepare(bw *bufio.Writer, payload []byte) error {
	query, rest, derr := wire.DecodeString(payload)
	if derr != nil || len(rest) != 0 {
		return c.sendError(bw, &execError{msg: "bad request: malformed prepare payload"})
	}
	var entry preparedEntry
	var pkind byte
	var nparams int
	var cols []string
	if f := strings.Fields(query); len(f) > 0 && strings.EqualFold(f[0], "select") {
		p, err := c.s.eng.Prepare(query)
		if err != nil {
			return c.sendError(bw, &execError{msg: err.Error()})
		}
		entry.sel, pkind, nparams, cols = p, wire.PreparedSelect, p.NumParams(), p.Columns()
	} else {
		p, err := c.s.eng.PrepareDML(query)
		if err != nil {
			return c.sendError(bw, &execError{msg: err.Error()})
		}
		entry.dml, pkind, nparams = p, wire.PreparedDML, p.NumParams()
	}
	c.nextID++
	c.prepared[c.nextID] = entry
	return wire.WriteFrame(bw, wire.MsgPrepared, wire.AppendPrepared(nil, c.nextID, pkind, nparams, cols))
}

func (c *binConn) execPrepared(bw *bufio.Writer, payload []byte) error {
	id, timeoutMS, params, derr := wire.DecodeExecPrepared(payload)
	if derr != nil {
		return c.sendError(bw, &execError{msg: fmt.Sprintf("bad request: %v", derr)})
	}
	entry, ok := c.prepared[id]
	if !ok {
		return c.sendError(bw, &execError{msg: fmt.Sprintf("unknown prepared statement id %d", id)})
	}
	release, ee := c.s.admit()
	if ee != nil {
		return c.sendError(bw, ee)
	}
	defer release()
	var res *core.Result
	var err error
	if entry.sel != nil {
		ctx, cancel := c.s.stmtContext(timeoutMS)
		res, err = entry.sel.QueryContext(ctx, params...)
		cancel()
	} else {
		res, err = entry.dml.Exec(params...)
	}
	if err != nil {
		return c.sendError(bw, &execError{msg: err.Error(), degraded: errors.Is(err, core.ErrDegraded)})
	}
	return c.sendResult(bw, &wire.Result{Columns: res.Columns, Rows: res.Rows, Affected: res.Affected})
}

func (c *binConn) copyBegin(bw *bufio.Writer, payload []byte) error {
	if c.copy != nil {
		return c.sendError(bw, &execError{msg: "COPY already in progress on this connection"})
	}
	table, cols, expectRows, derr := wire.DecodeCopyBegin(payload)
	if derr != nil {
		return c.sendError(bw, &execError{msg: fmt.Sprintf("bad request: %v", derr)})
	}
	// One admission token covers the whole load: a bulk load IS one long
	// statement as far as overload control is concerned.
	release, ee := c.s.admit()
	if ee != nil {
		return c.sendError(bw, ee)
	}
	bl, err := c.s.eng.BeginBulk(table, cols, expectRows)
	if err != nil {
		release()
		return c.sendError(bw, &execError{msg: err.Error(), degraded: errors.Is(err, core.ErrDegraded)})
	}
	width := len(cols)
	if width == 0 {
		width = bl.Width()
	}
	c.copy = &copyState{bl: bl, width: width, release: release}
	// Ack with an empty result; the client streams MsgCopyData after this.
	return c.sendResult(bw, &wire.Result{})
}

func (c *binConn) copyData(payload []byte) {
	if c.copy == nil || c.copy.failErr != nil {
		// No load open (client bug — reported at MsgCopyEnd) or the load
		// already failed: discard the batch.
		return
	}
	rows, err := wire.DecodeCopyData(payload, c.copy.width)
	if err == nil {
		_, err = c.copy.bl.Append(rows)
	}
	if err != nil {
		// First failure: report at MsgCopyEnd, but release the engine write
		// lock NOW — the client may keep streaming batches for a while, and
		// holding the lock across that would block every writer.
		c.copy.applied = c.copy.bl.Rows()
		c.copy.failErr = err
		c.copy.bl.Close()
	}
}

func (c *binConn) copyEnd(bw *bufio.Writer) error {
	if c.copy == nil {
		return c.sendError(bw, &execError{msg: "COPY end without COPY begin"})
	}
	cs := c.copy
	c.copy = nil
	defer cs.release()
	if cs.failErr != nil {
		return c.sendError(bw, &execError{
			msg:      fmt.Sprintf("bulk load failed after %d row(s): %v", cs.applied, cs.failErr),
			degraded: errors.Is(cs.failErr, core.ErrDegraded),
		})
	}
	res, err := cs.bl.Close()
	if err != nil {
		return c.sendError(bw, &execError{msg: err.Error(), degraded: errors.Is(err, core.ErrDegraded)})
	}
	return c.sendResult(bw, &wire.Result{Affected: res.Affected})
}

// commandCore serves protocol commands in their typed form. Like the JSON
// path these never consume an admission token — observability must answer
// while the server sheds statements.
func (s *Server) commandCore(cmd string) (*wire.Result, *execError) {
	switch strings.ToLower(cmd) {
	case "metrics":
		out := &wire.Result{Columns: []string{"name", "value"}}
		for _, kv := range s.eng.MetricsSnapshot() {
			out.Rows = append(out.Rows, types.Row{types.NewString(kv.Name), types.NewInt(kv.Value)})
		}
		return out, nil
	case "health":
		out := &wire.Result{Columns: []string{"name", "value"}}
		for _, p := range s.eng.Health().Pairs() {
			out.Rows = append(out.Rows, types.Row{types.NewString(p[0]), types.NewString(p[1])})
		}
		return out, nil
	default:
		return nil, &execError{msg: fmt.Sprintf("unknown command %q (supported: metrics, health)", cmd)}
	}
}
