package server

import (
	"encoding/json"
	"net"
	"net/http/httptest"
	"strings"
	"testing"

	"grfusion/internal/core"
)

func TestMetricsWireCommand(t *testing.T) {
	_, c := startServer(t)
	if _, err := c.Exec(`CREATE TABLE T (a BIGINT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`SELECT COUNT(*) FROM T`); err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m["statements.select"] < 1 {
		t.Errorf("statements.select = %d, want >= 1", m["statements.select"])
	}
	if m["statements.total"] < 2 {
		t.Errorf("statements.total = %d, want >= 2", m["statements.total"])
	}
	if _, ok := m["latency.p99_us"]; !ok {
		t.Errorf("latency summary missing from wire snapshot: %v", m)
	}
}

func TestUnknownWireCommand(t *testing.T) {
	_, c := startServer(t)
	_, err := c.command("nosuch")
	if err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("want unknown-command error, got %v", err)
	}
}

// TestShedAdmissionCounted verifies admission.shed moves when a statement
// is rejected, and that the METRICS command itself is never shed.
func TestShedAdmissionCounted(t *testing.T) {
	eng := core.New(core.Options{})
	srv := NewWith(eng, Config{MaxConcurrent: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Shutdown)
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	// Occupy the single admission token so the next statement sheds.
	srv.sem <- struct{}{}
	if _, err := c.Exec(`SELECT 1`); err == nil || !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("want overload shed, got %v", err)
	}
	m, err := c.Metrics() // must answer while the server is saturated
	if err != nil {
		t.Fatalf("METRICS shed alongside statements: %v", err)
	}
	if m["admission.shed"] != 1 {
		t.Errorf("admission.shed = %d, want 1", m["admission.shed"])
	}
	<-srv.sem
	if _, err := c.Exec(`SELECT 1`); err != nil {
		t.Fatalf("statement after release: %v", err)
	}
}

// TestMetricsHTTPEndpoint is the ISSUE's expvar-endpoint smoke test.
func TestMetricsHTTPEndpoint(t *testing.T) {
	eng := core.New(core.Options{})
	if _, err := eng.Execute(`CREATE TABLE T (a BIGINT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(MetricsMux(eng))
	t.Cleanup(ts.Close)

	get := func(path string) map[string]any {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return out
	}

	flat := get("/metrics")
	if v, ok := flat["statements.ddl"].(float64); !ok || v < 1 {
		t.Errorf("/metrics statements.ddl = %v, want >= 1", flat["statements.ddl"])
	}

	vars := get("/debug/vars")
	gr, ok := vars["grfusion"].(map[string]any)
	if !ok {
		t.Fatalf("/debug/vars missing grfusion var: %v", vars["grfusion"])
	}
	if v, ok := gr["statements.total"].(float64); !ok || v < 1 {
		t.Errorf("expvar statements.total = %v, want >= 1", gr["statements.total"])
	}
}
