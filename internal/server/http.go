package server

import (
	"encoding/json"
	"expvar"
	"net/http"
	"strconv"
	"sync"

	"grfusion/internal/core"
)

// HTTP observability endpoint (stdlib only). grfusion-server exposes it
// with -metrics-addr; tests mount the mux on an httptest server.

// MetricsHandler serves the engine's metrics snapshot as a flat JSON
// object {"name": value, ...} — the HTTP face of SHOW METRICS.
func MetricsHandler(eng *core.Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := eng.MetricsSnapshot()
		out := make(map[string]int64, len(snap))
		for _, kv := range snap {
			out[kv.Name] = kv.Value
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
}

// HealthzHandler serves the engine's durability health as JSON. It always
// answers 200: liveness is "the process responds", not "the disk works".
// The body carries the full health snapshot so operators can see why a
// degraded engine is degraded without a SQL connection.
func HealthzHandler(eng *core.Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h := eng.Health()
		out := make(map[string]string, 8)
		for _, p := range h.Pairs() {
			out[p[0]] = p[1]
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
}

// ReadyzHandler serves readiness: 200 while the engine accepts writes, 503
// once it has degraded to read-only (load balancers should drain write
// traffic; reads still work and /healthz stays green).
func ReadyzHandler(eng *core.Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h := eng.Health()
		w.Header().Set("Content-Type", "application/json")
		if !h.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(map[string]string{
			"ready":  strconv.FormatBool(h.Ready()),
			"state":  h.State.String(),
			"reason": h.Reason,
		})
	})
}

// expvar names are process-global and Publish panics on duplicates, so
// only the first engine is published no matter how many servers a process
// (or test binary) creates.
var expvarOnce sync.Once

// PublishExpvar registers the engine's snapshot under the expvar name
// "grfusion", visible alongside the runtime's memstats at /debug/vars.
func PublishExpvar(eng *core.Engine) {
	expvarOnce.Do(func() {
		expvar.Publish("grfusion", expvar.Func(func() any {
			snap := eng.MetricsSnapshot()
			out := make(map[string]int64, len(snap))
			for _, kv := range snap {
				out[kv.Name] = kv.Value
			}
			return out
		}))
	})
}

// MetricsMux bundles the HTTP surfaces: /metrics (flat JSON),
// /debug/vars (expvar), /healthz (liveness + health detail, always 200)
// and /readyz (readiness, 503 while degraded).
func MetricsMux(eng *core.Engine) *http.ServeMux {
	PublishExpvar(eng)
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(eng))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/healthz", HealthzHandler(eng))
	mux.Handle("/readyz", ReadyzHandler(eng))
	return mux
}
