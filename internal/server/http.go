package server

import (
	"encoding/json"
	"expvar"
	"net/http"
	"sync"

	"grfusion/internal/core"
)

// HTTP observability endpoint (stdlib only). grfusion-server exposes it
// with -metrics-addr; tests mount the mux on an httptest server.

// MetricsHandler serves the engine's metrics snapshot as a flat JSON
// object {"name": value, ...} — the HTTP face of SHOW METRICS.
func MetricsHandler(eng *core.Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := eng.MetricsSnapshot()
		out := make(map[string]int64, len(snap))
		for _, kv := range snap {
			out[kv.Name] = kv.Value
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
}

// expvar names are process-global and Publish panics on duplicates, so
// only the first engine is published no matter how many servers a process
// (or test binary) creates.
var expvarOnce sync.Once

// PublishExpvar registers the engine's snapshot under the expvar name
// "grfusion", visible alongside the runtime's memstats at /debug/vars.
func PublishExpvar(eng *core.Engine) {
	expvarOnce.Do(func() {
		expvar.Publish("grfusion", expvar.Func(func() any {
			snap := eng.MetricsSnapshot()
			out := make(map[string]int64, len(snap))
			for _, kv := range snap {
				out[kv.Name] = kv.Value
			}
			return out
		}))
	})
}

// MetricsMux bundles both HTTP surfaces: /metrics (flat JSON) and
// /debug/vars (expvar).
func MetricsMux(eng *core.Engine) *http.ServeMux {
	PublishExpvar(eng)
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(eng))
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
