package exec

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"grfusion/internal/catalog"
	"grfusion/internal/expr"
	"grfusion/internal/graph"
	"grfusion/internal/storage"
	"grfusion/internal/types"
)

// Phys selects the physical traversal operator a logical PathScan maps to
// (§5.1.2, §6.3).
type Phys uint8

// Physical path operators.
const (
	PhysDFS Phys = iota // DFScan
	PhysBFS             // BFScan
	PhysSP              // SPScan (Dijkstra / k-shortest simple paths)
)

func (p Phys) String() string {
	switch p {
	case PhysDFS:
		return "DFScan"
	case PhysBFS:
		return "BFScan"
	case PhysSP:
		return "SPScan"
	default:
		// An unknown value is a bug somewhere upstream; naming it SPScan
		// would hide that from EXPLAIN, so print the raw value instead.
		return fmt.Sprintf("Phys(%d)", uint8(p))
	}
}

// Layout selects the topology representation a PathScan traverses: the
// live pointer topology, or the immutable CSR read snapshot with its
// index-based zero-allocation kernels. The two are observationally
// identical (the differential oracle enforces it); layout is purely a
// physical choice, like Phys.
type Layout uint8

// Topology layouts.
const (
	// LayoutPtr walks the live adjacency lists — always correct, no build
	// cost, the right call for small graphs and the oracle's reference.
	LayoutPtr Layout = iota
	// LayoutCSR traverses the view's cached CSR snapshot (rebuilt lazily
	// after DML), trading one build for allocation-free traversal.
	LayoutCSR
)

func (l Layout) String() string {
	switch l {
	case LayoutPtr:
		return "ptr"
	case LayoutCSR:
		return "csr"
	default:
		return fmt.Sprintf("Layout(%d)", uint8(l))
	}
}

// ElemFilter is one pushed-down per-position predicate over the path's
// edges or vertexes (§6.2), e.g. PS.Edges[0..*].StartDate > '2000-01-01'.
// The non-path side (Other / List) is bound to the OUTER schema and
// evaluated once per probe.
type ElemFilter struct {
	Elem expr.ElemKind
	Rng  expr.Rng
	Attr string

	// Comparison form: elem Op Other (or Other Op elem when Flipped).
	Op      expr.BinOp
	Flipped bool
	Other   expr.Expr

	// IN form: elem [NOT] IN List. Used when IsIn is set.
	IsIn  bool
	InNeg bool
	List  []expr.Expr
}

func (f *ElemFilter) contains(pos int) bool {
	switch {
	case f.Rng.All:
		return true
	case f.Rng.Wildcard:
		return pos >= f.Rng.Start
	default:
		return pos >= f.Rng.Start && pos <= f.Rng.End
	}
}

// String renders the filter exactly as EXPLAIN shows it, using the same
// subscript convention as expr.PathElemAttr: [*] for an unsubscripted
// range, [i..*] for a wildcard, [i] for a single position, [i..j] for a
// bounded range. Flipped comparisons keep their original orientation
// (Other Op elem), and IN lists render their members.
func (f *ElemFilter) String() string {
	elem := "Edges"
	if f.Elem == expr.ElemVertexes {
		elem = "Vertexes"
	}
	var sub string
	switch {
	case f.Rng.All:
		sub = "[*]"
	case f.Rng.Wildcard:
		sub = fmt.Sprintf("[%d..*]", f.Rng.Start)
	case f.Rng.Single():
		sub = fmt.Sprintf("[%d]", f.Rng.Start)
	default:
		sub = fmt.Sprintf("[%d..%d]", f.Rng.Start, f.Rng.End)
	}
	ref := fmt.Sprintf("%s%s.%s", elem, sub, f.Attr)
	if f.IsIn {
		items := make([]string, len(f.List))
		for i, e := range f.List {
			items[i] = e.String()
		}
		op := "IN"
		if f.InNeg {
			op = "NOT IN"
		}
		return fmt.Sprintf("%s %s (%s)", ref, op, strings.Join(items, ", "))
	}
	if f.Flipped {
		return fmt.Sprintf("%s %s %s", f.Other, f.Op, ref)
	}
	return fmt.Sprintf("%s %s %s", ref, f.Op, f.Other)
}

// AggBound is a pushed-down monotone aggregate bound (§6.2), e.g.
// SUM(PS.Edges.Cost) < 10: traversal prunes any partial path whose
// accumulated value already violates the bound, provided every contribution
// seen so far is non-negative (otherwise pruning would be unsound and the
// bound is left to the residual filter above the scan).
type AggBound struct {
	Agg  string // SUM or COUNT
	Elem expr.ElemKind
	Attr string // empty for COUNT(PS.Edges)
	Op   expr.BinOp
	// Bound is evaluated against the outer row once per probe.
	Bound expr.Expr
}

// PathScanSpec is the optimizer's full description of one PathScan.
type PathScanSpec struct {
	GV    *catalog.GraphView
	Alias string

	// At, when set, pins the traversal to one engine version (topology
	// instance + source-table snapshots); nil traverses the live view.
	At *catalog.GraphViewAt

	Phys   Phys
	Layout Layout
	Policy graph.VisitPolicy
	// CycleClose allows the path to close back onto its start vertex and
	// binds the traversal target to the start (triangle-style patterns).
	CycleClose bool

	MinLen, MaxLen int

	// StartExpr yields the start vertex id; nil starts from every vertex
	// (§5.1.2). EndExpr, when set, binds the traversal target. Both are
	// bound to the OUTER schema.
	StartExpr, EndExpr expr.Expr

	// Parallel marks the scan safe to fan across the executor's traversal
	// worker pool (set by the planner for multi-source scans). It only
	// takes effect when Context.Workers > 1; results are merged in source
	// order either way, so the knob never changes query output.
	Parallel bool

	// WeightAttr is the SPScan weight attribute; KPaths is the number of
	// shortest simple paths to enumerate per (start, target) pair.
	WeightAttr string
	KPaths     int

	EdgeFilters   []ElemFilter
	VertexFilters []ElemFilter
	AggBounds     []AggBound
}

// PathColumn returns the schema column a PathScan contributes.
func PathColumn(alias string) types.Column {
	return types.Column{Qualifier: alias, Name: catalog.PathColumn, Type: types.KindPath}
}

// PathProbeJoin drives a PathScan from a relational outer input: every
// outer tuple probes the traversal operator with its start (and target)
// vertex bindings, exactly the QEP shape of Figure 6 in the paper. With a
// Singleton outer it degenerates to a standalone path scan.
type PathProbeJoin struct {
	Outer Operator
	Spec  PathScanSpec
	// Residual is an optional path predicate (bound to the output schema)
	// that could not be pushed into the traversal.
	Residual expr.Expr

	schema *types.Schema
}

// NewPathProbeJoin creates the probe join; the output schema is the outer
// schema plus the path column.
func NewPathProbeJoin(outer Operator, spec PathScanSpec, residual expr.Expr) *PathProbeJoin {
	s := outer.Schema().Concat(types.NewSchema(PathColumn(spec.Alias)))
	return &PathProbeJoin{Outer: outer, Spec: spec, Residual: residual, schema: s}
}

// Schema implements Operator.
func (p *PathProbeJoin) Schema() *types.Schema { return p.schema }

// Explain implements Operator.
func (p *PathProbeJoin) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "PathScan[%s] %s", p.Spec.Phys, p.Spec.GV.Name)
	fmt.Fprintf(&sb, " len=[%d,%d]", p.Spec.MinLen, p.Spec.MaxLen)
	if p.Spec.StartExpr != nil {
		fmt.Fprintf(&sb, " start=%s", p.Spec.StartExpr)
	}
	if p.Spec.EndExpr != nil {
		fmt.Fprintf(&sb, " end=%s", p.Spec.EndExpr)
	}
	if p.Spec.CycleClose {
		sb.WriteString(" cycle")
	}
	if p.Spec.Policy == graph.VisitPerPath {
		sb.WriteString(" allpaths")
	}
	if n := len(p.Spec.EdgeFilters) + len(p.Spec.VertexFilters); n > 0 {
		parts := make([]string, 0, n)
		for i := range p.Spec.EdgeFilters {
			parts = append(parts, p.Spec.EdgeFilters[i].String())
		}
		for i := range p.Spec.VertexFilters {
			parts = append(parts, p.Spec.VertexFilters[i].String())
		}
		fmt.Fprintf(&sb, " pushed=%d (%s)", n, strings.Join(parts, " AND "))
	}
	if len(p.Spec.AggBounds) > 0 {
		fmt.Fprintf(&sb, " aggbounds=%d", len(p.Spec.AggBounds))
	}
	if p.Spec.Phys == PhysSP {
		fmt.Fprintf(&sb, " weight=%s k=%d", p.Spec.WeightAttr, p.Spec.KPaths)
	}
	if p.Spec.Parallel {
		sb.WriteString(" parallel")
	}
	fmt.Fprintf(&sb, " layout=%s", p.Spec.Layout)
	if p.Residual != nil {
		fmt.Fprintf(&sb, " residual=%s", p.Residual)
	}
	return sb.String()
}

// Children implements Operator.
func (p *PathProbeJoin) Children() []Operator { return []Operator{p.Outer} }

// Open implements Operator.
func (p *PathProbeJoin) Open(ctx *Context) (Iterator, error) {
	outer, err := p.Outer.Open(ctx)
	if err != nil {
		return nil, err
	}
	it := &pathProbeIter{ctx: ctx, p: p, outer: outer, at: p.Spec.At}
	if it.at == nil {
		it.at = p.Spec.GV.Live()
	}
	// Resolve pushed-filter attributes to source-column positions once so
	// the per-edge hot path is a tuple-pointer dereference plus an index,
	// not a name lookup (§3.2's O(1) linkage, made literal).
	gv := p.Spec.GV
	it.edgePos = make([]int, len(p.Spec.EdgeFilters))
	for i := range p.Spec.EdgeFilters {
		pos, ok := gv.EdgeAttrSourcePos(p.Spec.EdgeFilters[i].Attr)
		if !ok {
			pos = -1
		}
		it.edgePos[i] = pos
	}
	it.vertPos = make([]int, len(p.Spec.VertexFilters))
	for i := range p.Spec.VertexFilters {
		pos, ok := gv.VertexAttrSourcePos(p.Spec.VertexFilters[i].Attr)
		if !ok {
			pos = -1 // FanIn/FanOut: computed via the accessor
		}
		it.vertPos[i] = pos
	}
	it.boundPos = make([]int, len(p.Spec.AggBounds))
	for i := range p.Spec.AggBounds {
		pos := -1
		if b := &p.Spec.AggBounds[i]; b.Attr != "" {
			var ok bool
			if b.Elem == expr.ElemVertexes {
				pos, ok = gv.VertexAttrSourcePos(b.Attr)
			} else {
				pos, ok = gv.EdgeAttrSourcePos(b.Attr)
			}
			if !ok {
				pos = -1
			}
		}
		it.boundPos[i] = pos
	}
	it.weightPos = -1
	if p.Spec.Phys == PhysSP {
		if pos, ok := gv.EdgeAttrSourcePos(p.Spec.WeightAttr); ok {
			it.weightPos = pos
		}
	}
	if p.Spec.Layout == LayoutCSR {
		// Fetch (or lazily build) the CSR snapshot at execution time — never
		// at plan time, where the topology the query will actually see is not
		// yet bound. The snapshot is taken from the bound version's topology
		// instance, so a pinned reader traverses exactly what it pinned even
		// while writers advance the live view.
		it.csr = it.at.CSR()
	}
	return it, nil
}

type pathProbeIter struct {
	ctx   *Context
	p     *PathProbeJoin
	outer Iterator

	// at is the version binding every topology walk and tuple dereference
	// resolves against (Spec.At, or the live view when unpinned).
	at *catalog.GraphViewAt

	// Resolved source-column positions of pushed filters (-1 = use the
	// accessor path, e.g. for computed FanIn/FanOut properties).
	edgePos   []int
	vertPos   []int
	boundPos  []int
	weightPos int

	// csr is the immutable snapshot traversed under LayoutCSR; nil means
	// the pointer kernels walk the live topology.
	csr *graph.CSR

	outerRow types.Row
	starts   []*graph.Vertex
	si       int
	target   *graph.Vertex
	consts   probeConsts
	run      *probeRun
}

// probeRun is one live traversal: the kernel iterator plus the mutable
// state its filter closures write (evaluation errors, the edge counter).
// Isolating that state per run is what makes the parallel path sound —
// every worker owns exactly one run at a time, while the enclosing
// pathProbeIter only holds state that is read-only for the probe's
// duration (spec, resolved positions, bound constants).
type probeRun struct {
	ctx     *Context
	iter    graph.PathIterator
	evalErr error        // set by filter/weight closures
	spErr   func() error // kernel error surface (SPScan, parallel merge)
	edges   int64        // run-local EdgesTraversed
	msi     *graph.MultiSourceIter
}

// err surfaces whichever error the run hit first.
func (r *probeRun) err() error {
	if r.evalErr != nil {
		return r.evalErr
	}
	if r.spErr != nil {
		return r.spErr()
	}
	return nil
}

// finish flushes the run's counters and, for a parallel run, waits for
// every worker to exit — the caller may release the engine's shared lock
// (or rebind the probe state workers read) only after this returns. The
// counter flush is atomic because parallel workers finish concurrently.
// A CSR kernel's pooled scratch is returned here, so even a traversal a
// LIMIT stopped mid-flight recycles its buffers (read any kernel error
// via err() before calling finish).
func (r *probeRun) finish() {
	if r.msi != nil {
		r.msi.Close()
		r.msi = nil
	}
	if rel, ok := r.iter.(interface{ Release() }); ok {
		rel.Release()
	}
	if r.edges != 0 {
		atomic.AddInt64(&r.ctx.EdgesTraversed, r.edges)
		r.edges = 0
	}
}

// probeConsts holds the per-probe constant values of pushed filters.
type probeConsts struct {
	edgeOther []types.Value
	edgeList  [][]types.Value
	vertOther []types.Value
	vertList  [][]types.Value
	boundVals []types.Value
}

func (it *pathProbeIter) Next() (types.Row, error) {
	for {
		// Cancellation fires here even when the kernels below halted
		// silently: a stopped kernel looks exhausted, and this check turns
		// that into the typed lifecycle error instead of a partial result.
		if err := it.ctx.CheckCancel(); err != nil {
			if it.run != nil {
				it.run.finish()
				it.run = nil
			}
			return nil, err
		}
		if it.run != nil {
			path := it.run.iter.Next()
			if err := it.run.evalErr; err != nil {
				return nil, err
			}
			if path != nil {
				it.ctx.PathsEmitted++
				row := make(types.Row, 0, len(it.outerRow)+1)
				row = append(row, it.outerRow...)
				row = append(row, types.NewRef(types.KindPath, path))
				if it.p.Residual != nil {
					ok, err := expr.EvalBool(it.p.Residual, &expr.Env{Row: row, Params: it.ctx.Params})
					if err != nil {
						return nil, err
					}
					if !ok {
						continue
					}
				}
				return row, nil
			}
			err := it.run.err()
			it.run.finish()
			it.run = nil
			if errors.Is(err, graph.ErrStopped) {
				// The parallel merge halted on the cancellation signal;
				// report the typed cause instead of the kernel sentinel.
				if cerr := it.ctx.CheckCancel(); cerr != nil {
					err = cerr
				}
			}
			if err == nil {
				// Kernels halt silently when the cancellation signal fires:
				// a stopped kernel is indistinguishable from an exhausted
				// one. Re-check here so a cancelled traversal can never
				// masquerade as a complete (but truncated) result.
				err = it.ctx.CheckCancel()
			}
			if err != nil {
				return nil, err
			}
		}
		if it.si < len(it.starts) {
			if it.si == 0 && it.parallelEligible() {
				it.openParallel()
			} else {
				start := it.starts[it.si]
				it.si++
				it.run = it.newRun(start)
			}
			continue
		}
		// Advance to the next outer row. Any previous run has finished by
		// now, so rebinding the probe state below cannot race a worker.
		row, err := it.outer.Next()
		if err != nil || row == nil {
			return nil, err
		}
		it.outerRow = row
		if err := it.bindProbe(); err != nil {
			return nil, err
		}
	}
}

func (it *pathProbeIter) Close() {
	if it.run != nil {
		it.run.finish()
		it.run = nil
	}
	it.outer.Close()
}

// parallelEligible reports whether the current probe should fan across the
// traversal worker pool: the planner marked the scan parallel, the session
// configured a pool, and there is more than one source to fan out.
func (it *pathProbeIter) parallelEligible() bool {
	return it.p.Spec.Parallel && it.ctx.Workers > 1 && len(it.starts) > 1
}

// openParallel runs one traversal per start vertex on the worker pool. The
// merge yields paths in start order, so output is byte-identical to the
// sequential loop over it.starts.
func (it *pathProbeIter) openParallel() {
	starts := it.starts
	it.si = len(starts)
	msi := graph.RunMultiSource(it.ctx.Done(), len(starts), it.ctx.Workers, func(i int) ([]*graph.Path, error) {
		return it.drainSource(starts[i])
	})
	it.run = &probeRun{ctx: it.ctx, iter: msi, spErr: msi.Err, msi: msi}
}

// drainSource runs one source's traversal to completion on behalf of a
// worker, returning its paths in kernel order.
func (it *pathProbeIter) drainSource(start *graph.Vertex) ([]*graph.Path, error) {
	run := it.newRun(start)
	defer run.finish()
	var out []*graph.Path
	for {
		// Worker-side cooperative check: a canceled query stops draining
		// even when the kernel below is between its own amortized polls.
		if err := it.ctx.CheckCancel(); err != nil {
			return nil, err
		}
		p := run.iter.Next()
		if run.evalErr != nil {
			return nil, run.evalErr
		}
		if p == nil {
			break
		}
		out = append(out, p)
	}
	if err := run.err(); err != nil {
		return nil, err
	}
	return out, nil
}

// bindProbe evaluates the outer-dependent parts of the spec for the
// current outer row: start vertexes, target, and filter constants.
func (it *pathProbeIter) bindProbe() error {
	spec := &it.p.Spec
	g := it.at.G
	it.starts = it.starts[:0]
	it.si = 0
	it.target = nil

	env := &expr.Env{Row: it.outerRow, Params: it.ctx.Params}
	if spec.StartExpr != nil {
		v, err := expr.Eval(spec.StartExpr, env)
		if err != nil {
			return fmt.Errorf("path start binding: %v", err)
		}
		if v.Kind == types.KindInt {
			if sv := g.Vertex(v.I); sv != nil {
				it.starts = append(it.starts, sv)
			}
		}
	} else {
		g.Vertices(func(v *graph.Vertex) bool {
			it.starts = append(it.starts, v)
			return true
		})
	}
	if spec.EndExpr != nil {
		v, err := expr.Eval(spec.EndExpr, env)
		if err != nil {
			return fmt.Errorf("path end binding: %v", err)
		}
		if v.Kind == types.KindInt {
			it.target = g.Vertex(v.I)
		}
		if it.target == nil {
			it.starts = it.starts[:0] // the bound endpoint does not exist
		}
	}
	return it.bindConsts(env)
}

func (it *pathProbeIter) bindConsts(env *expr.Env) error {
	spec := &it.p.Spec
	c := &it.consts
	evalList := func(list []expr.Expr) ([]types.Value, error) {
		out := make([]types.Value, len(list))
		for i, e := range list {
			v, err := expr.Eval(e, env)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	var err error
	bindFilters := func(fs []ElemFilter) (others []types.Value, lists [][]types.Value, err error) {
		others = make([]types.Value, len(fs))
		lists = make([][]types.Value, len(fs))
		for i := range fs {
			if fs[i].IsIn {
				if lists[i], err = evalList(fs[i].List); err != nil {
					return nil, nil, err
				}
			} else {
				if others[i], err = expr.Eval(fs[i].Other, env); err != nil {
					return nil, nil, err
				}
			}
		}
		return others, lists, nil
	}
	if c.edgeOther, c.edgeList, err = bindFilters(spec.EdgeFilters); err != nil {
		return err
	}
	if c.vertOther, c.vertList, err = bindFilters(spec.VertexFilters); err != nil {
		return err
	}
	c.boundVals = make([]types.Value, len(spec.AggBounds))
	for i := range spec.AggBounds {
		if c.boundVals[i], err = expr.Eval(spec.AggBounds[i].Bound, env); err != nil {
			return err
		}
	}
	return nil
}

func (it *pathProbeIter) evalFilter(f *ElemFilter, v types.Value, other types.Value, list []types.Value) bool {
	if f.IsIn {
		hit := false
		for _, lv := range list {
			if expr.CompareOp(expr.OpEq, v, lv) {
				hit = true
				break
			}
		}
		return hit != f.InNeg
	}
	if f.Flipped {
		return expr.CompareOp(f.Op, other, v)
	}
	return expr.CompareOp(f.Op, v, other)
}

// newRun instantiates the traversal kernel for one start vertex. The
// returned run owns all mutable traversal state; the closures it installs
// only read from it (spec, resolved positions, per-probe constants), so
// runs for different starts may execute on different goroutines.
func (it *pathProbeIter) newRun(start *graph.Vertex) *probeRun {
	spec := &it.p.Spec
	gv := spec.GV
	run := &probeRun{ctx: it.ctx}

	target := it.target
	if spec.CycleClose {
		target = start
	}
	gspec := graph.Spec{
		Start:      start,
		Target:     target,
		MinLen:     spec.MinLen,
		MaxLen:     spec.MaxLen,
		Policy:     spec.Policy,
		AllowCycle: spec.CycleClose,
		Done:       it.ctx.Done(),
	}
	gspec.FilterEdge = func(pos int, e *graph.Edge, from, to *graph.Vertex) bool {
		run.edges++
		for i := range spec.EdgeFilters {
			f := &spec.EdgeFilters[i]
			if !f.contains(pos) {
				continue
			}
			v, err := it.edgeAttr(e, it.edgePos[i], f.Attr)
			if err != nil {
				run.evalErr = err
				return false
			}
			if !it.evalFilter(f, v, it.consts.edgeOther[i], it.consts.edgeList[i]) {
				return false
			}
		}
		return true
	}
	if len(spec.VertexFilters) > 0 {
		gspec.FilterVertex = func(pos int, v *graph.Vertex) bool {
			for i := range spec.VertexFilters {
				f := &spec.VertexFilters[i]
				if !f.contains(pos) {
					continue
				}
				val, err := it.vertexAttr(v, it.vertPos[i], f.Attr)
				if err != nil {
					run.evalErr = err
					return false
				}
				if !it.evalFilter(f, val, it.consts.vertOther[i], it.consts.vertList[i]) {
					return false
				}
			}
			return true
		}
	}
	if len(spec.AggBounds) > 0 {
		gspec.Prune = func(p *graph.Path) bool {
			for i := range spec.AggBounds {
				if !it.checkBound(i, it.consts.boundVals[i], p, &run.evalErr) {
					return false
				}
			}
			return true
		}
	}
	switch spec.Phys {
	case PhysSP:
		weight := func(pos int, e *graph.Edge, from, to *graph.Vertex) (float64, bool) {
			v, err := it.edgeAttr(e, it.weightPos, spec.WeightAttr)
			if err != nil {
				run.evalErr = err
				return 0, false
			}
			if !v.IsNumeric() {
				run.evalErr = fmt.Errorf("SPScan weight attribute %s.%s is not numeric (kind %s)",
					gv.Name, spec.WeightAttr, v.Kind)
				return 0, false
			}
			return v.AsFloat(), true
		}
		k := spec.KPaths
		if it.csr != nil {
			sp := graph.NewCSRShortest(it.csr, gspec, weight, k)
			run.iter = sp
			run.spErr = sp.Err
		} else {
			sp := graph.NewShortest(it.at.G, gspec, weight, k)
			run.iter = sp
			run.spErr = sp.Err
		}
	case PhysBFS:
		if it.csr != nil {
			run.iter = graph.NewCSRBFS(it.csr, gspec)
		} else {
			run.iter = graph.NewBFS(it.at.G, gspec)
		}
	default:
		if it.csr != nil {
			run.iter = graph.NewCSRDFS(it.csr, gspec)
		} else {
			run.iter = graph.NewDFS(it.at.G, gspec)
		}
	}
	return run
}

// checkBound prunes a partial path that already violates a monotone
// aggregate bound. Pruning is skipped (returns true) when any contribution
// is negative, since the aggregate could still shrink. Evaluation errors
// go to errp (the owning run's error slot).
func (it *pathProbeIter) checkBound(bi int, bound types.Value, p *graph.Path, errp *error) bool {
	b := &it.p.Spec.AggBounds[bi]
	if bound.IsNull() || !bound.IsNumeric() {
		return true // leave it to the residual filter
	}
	var acc float64
	switch b.Agg {
	case "COUNT":
		if b.Elem == expr.ElemVertexes {
			acc = float64(len(p.Verts))
		} else {
			acc = float64(len(p.Edges))
		}
	case "SUM":
		n := len(p.Edges)
		if b.Elem == expr.ElemVertexes {
			n = len(p.Verts)
		}
		pos := it.boundPos[bi]
		for i := 0; i < n; i++ {
			var v types.Value
			var err error
			if b.Elem == expr.ElemVertexes {
				v, err = it.vertexAttr(p.Verts[i], pos, b.Attr)
			} else {
				v, err = it.edgeAttr(p.Edges[i], pos, b.Attr)
			}
			if err != nil {
				*errp = err
				return false
			}
			if v.IsNull() || !v.IsNumeric() {
				return true
			}
			f := v.AsFloat()
			if f < 0 {
				return true // non-monotone: cannot prune soundly
			}
			acc += f
		}
	default:
		return true
	}
	switch b.Op {
	case expr.OpLt:
		return acc < bound.AsFloat()
	case expr.OpLe:
		return acc <= bound.AsFloat()
	default:
		return true
	}
}

// edgeAttr reads one edge attribute, via the resolved source-column
// position when available (the hot path) or the accessor otherwise.
func (it *pathProbeIter) edgeAttr(e *graph.Edge, pos int, attr string) (types.Value, error) {
	if pos >= 0 {
		row, ok := it.at.E.Get(storage.RowID(e.Tuple))
		if !ok {
			return types.Null(), fmt.Errorf("graph view %s: dangling tuple pointer for edge %d",
				it.p.Spec.GV.Name, e.ID)
		}
		return row[pos], nil
	}
	return it.at.EdgeAttrValue(e, attr)
}

// vertexAttr reads one vertex attribute analogously; computed properties
// (FanIn/FanOut) take the accessor path.
func (it *pathProbeIter) vertexAttr(v *graph.Vertex, pos int, attr string) (types.Value, error) {
	if pos >= 0 {
		row, ok := it.at.V.Get(storage.RowID(v.Tuple))
		if !ok {
			return types.Null(), fmt.Errorf("graph view %s: dangling tuple pointer for vertex %d",
				it.p.Spec.GV.Name, v.ID)
		}
		return row[pos], nil
	}
	return it.at.VertexAttrValue(v, attr)
}
