package exec

import (
	"testing"

	"grfusion/internal/expr"
	"grfusion/internal/types"
)

func lit(i int64) expr.Expr { return &expr.Literal{Val: types.NewInt(i)} }

// TestElemFilterString locks the EXPLAIN rendering of pushed-down path
// predicates: bounded ranges must keep both bounds, [*] (All) must stay
// distinct from [i..*] (Wildcard), flipped comparisons must keep their
// orientation, and NOT IN must not collapse into IN.
func TestElemFilterString(t *testing.T) {
	cases := []struct {
		name string
		f    ElemFilter
		want string
	}{
		{
			name: "bounded range keeps both bounds",
			f: ElemFilter{
				Elem: expr.ElemEdges,
				Rng:  expr.Rng{Start: 2, End: 5},
				Attr: "W", Op: expr.OpGt, Other: lit(10),
			},
			want: "Edges[2..5].W > 10",
		},
		{
			name: "single position",
			f: ElemFilter{
				Elem: expr.ElemEdges,
				Rng:  expr.Rng{Start: 3, End: 3},
				Attr: "W", Op: expr.OpEq, Other: lit(7),
			},
			want: "Edges[3].W = 7",
		},
		{
			name: "wildcard from offset",
			f: ElemFilter{
				Elem: expr.ElemEdges,
				Rng:  expr.Rng{Start: 1, Wildcard: true},
				Attr: "Sel", Op: expr.OpLt, Other: lit(80),
			},
			want: "Edges[1..*].Sel < 80",
		},
		{
			name: "all positions is [*], not a wildcard",
			f: ElemFilter{
				Elem: expr.ElemVertexes,
				Rng:  expr.Rng{All: true},
				Attr: "Age", Op: expr.OpGe, Other: lit(18),
			},
			want: "Vertexes[*].Age >= 18",
		},
		{
			name: "flipped comparison keeps its orientation",
			f: ElemFilter{
				Elem: expr.ElemEdges,
				Rng:  expr.Rng{Start: 0, Wildcard: true},
				Attr: "W", Op: expr.OpLt, Flipped: true, Other: lit(100),
			},
			want: "100 < Edges[0..*].W",
		},
		{
			name: "IN renders its list",
			f: ElemFilter{
				Elem: expr.ElemVertexes,
				Rng:  expr.Rng{Start: 0, End: 2},
				Attr: "Kind", IsIn: true, List: []expr.Expr{lit(1), lit(2)},
			},
			want: "Vertexes[0..2].Kind IN (1, 2)",
		},
		{
			name: "NOT IN is not IN",
			f: ElemFilter{
				Elem: expr.ElemEdges,
				Rng:  expr.Rng{Start: 0, Wildcard: true},
				Attr: "Kind", IsIn: true, InNeg: true, List: []expr.Expr{lit(3)},
			},
			want: "Edges[0..*].Kind NOT IN (3)",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.f.String(); got != tc.want {
				t.Errorf("ElemFilter.String() = %q, want %q", got, tc.want)
			}
		})
	}
}

// TestPhysString pins the physical-operator names and requires unknown
// values to be visible as such rather than masquerading as SPScan.
func TestPhysString(t *testing.T) {
	cases := []struct {
		p    Phys
		want string
	}{
		{PhysDFS, "DFScan"},
		{PhysBFS, "BFScan"},
		{PhysSP, "SPScan"},
		{Phys(7), "Phys(7)"},
		{Phys(255), "Phys(255)"},
	}
	for _, tc := range cases {
		if got := tc.p.String(); got != tc.want {
			t.Errorf("Phys(%d).String() = %q, want %q", uint8(tc.p), got, tc.want)
		}
	}
}
