package exec

import (
	"fmt"
	"strings"

	"grfusion/internal/expr"
	"grfusion/internal/types"
)

// HashJoin is an equi-join: it builds a hash table on the right input's
// keys and probes it with left rows. An optional residual predicate (bound
// to the concatenated schema) filters matches.
type HashJoin struct {
	Left, Right         Operator
	LeftKeys, RightKeys []expr.Expr
	Residual            expr.Expr

	schema *types.Schema
}

// NewHashJoin creates a hash join. Key lists must be equal length; keys are
// bound to their side's schema, the residual to left⊕right.
func NewHashJoin(left, right Operator, leftKeys, rightKeys []expr.Expr, residual expr.Expr) *HashJoin {
	return &HashJoin{Left: left, Right: right, LeftKeys: leftKeys, RightKeys: rightKeys,
		Residual: residual, schema: left.Schema().Concat(right.Schema())}
}

// Schema implements Operator.
func (j *HashJoin) Schema() *types.Schema { return j.schema }

// Explain implements Operator.
func (j *HashJoin) Explain() string {
	parts := make([]string, len(j.LeftKeys))
	for i := range j.LeftKeys {
		parts[i] = fmt.Sprintf("%s=%s", j.LeftKeys[i], j.RightKeys[i])
	}
	out := "HashJoin " + strings.Join(parts, " AND ")
	if j.Residual != nil {
		out += fmt.Sprintf(" residual=%s", j.Residual)
	}
	return out
}

// Children implements Operator.
func (j *HashJoin) Children() []Operator { return []Operator{j.Left, j.Right} }

// Open implements Operator.
func (j *HashJoin) Open(ctx *Context) (Iterator, error) {
	right, err := j.Right.Open(ctx)
	if err != nil {
		return nil, err
	}
	table := make(map[string][]types.Row)
	var charged int64
	for {
		if err := ctx.CheckCancel(); err != nil {
			right.Close()
			ctx.Release(charged)
			return nil, err
		}
		row, err := right.Next()
		if err != nil {
			right.Close()
			ctx.Release(charged)
			return nil, err
		}
		if row == nil {
			break
		}
		key, null, err := joinKey(j.RightKeys, row, ctx.Params)
		if err != nil {
			right.Close()
			ctx.Release(charged)
			return nil, err
		}
		if null {
			continue // NULL keys never join
		}
		b := rowBytes(row) + int64(len(key))
		if err := ctx.Grow(b); err != nil {
			right.Close()
			ctx.Release(charged)
			return nil, err
		}
		charged += b
		table[key] = append(table[key], row)
	}
	right.Close()
	left, err := j.Left.Open(ctx)
	if err != nil {
		ctx.Release(charged)
		return nil, err
	}
	return &hashJoinIter{ctx: ctx, j: j, left: left, table: table, charged: charged}, nil
}

type hashJoinIter struct {
	ctx     *Context
	j       *HashJoin
	left    Iterator
	table   map[string][]types.Row
	charged int64

	leftRow types.Row
	matches []types.Row
	mi      int
}

func (it *hashJoinIter) Next() (types.Row, error) {
	for {
		if err := it.ctx.CheckCancel(); err != nil {
			return nil, err
		}
		for it.mi < len(it.matches) {
			r := it.matches[it.mi]
			it.mi++
			joined := types.ConcatRows(it.leftRow, r)
			if it.j.Residual != nil {
				ok, err := expr.EvalBool(it.j.Residual, &expr.Env{Row: joined, Params: it.ctx.Params})
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			return joined, nil
		}
		row, err := it.left.Next()
		if err != nil || row == nil {
			return nil, err
		}
		key, null, err := joinKey(it.j.LeftKeys, row, it.ctx.Params)
		if err != nil {
			return nil, err
		}
		if null {
			continue
		}
		it.leftRow = row
		it.matches = it.table[key]
		it.mi = 0
	}
}

func (it *hashJoinIter) Close() {
	it.left.Close()
	it.ctx.Release(it.charged)
	it.charged = 0
}

func joinKey(keys []expr.Expr, row types.Row, params types.Row) (string, bool, error) {
	var sb strings.Builder
	env := &expr.Env{Row: row, Params: params}
	for _, k := range keys {
		v, err := expr.Eval(k, env)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", true, nil
		}
		v.AppendKey(&sb)
		sb.WriteByte(0x1f)
	}
	return sb.String(), false, nil
}

// NestedLoopJoin materializes its right input and pairs every left row with
// every right row, filtering with the On predicate (bound to left⊕right).
// It is the fallback when no equi-join keys exist.
type NestedLoopJoin struct {
	Left, Right Operator
	On          expr.Expr // may be nil for a pure cross product

	schema *types.Schema
}

// NewNestedLoopJoin creates a nested-loop join.
func NewNestedLoopJoin(left, right Operator, on expr.Expr) *NestedLoopJoin {
	return &NestedLoopJoin{Left: left, Right: right, On: on,
		schema: left.Schema().Concat(right.Schema())}
}

// Schema implements Operator.
func (j *NestedLoopJoin) Schema() *types.Schema { return j.schema }

// Explain implements Operator.
func (j *NestedLoopJoin) Explain() string {
	if j.On == nil {
		return "NestedLoopJoin (cross)"
	}
	return fmt.Sprintf("NestedLoopJoin on=%s", j.On)
}

// Children implements Operator.
func (j *NestedLoopJoin) Children() []Operator { return []Operator{j.Left, j.Right} }

// Open implements Operator.
func (j *NestedLoopJoin) Open(ctx *Context) (Iterator, error) {
	right, err := j.Right.Open(ctx)
	if err != nil {
		return nil, err
	}
	var rows []types.Row
	var charged int64
	for {
		if err := ctx.CheckCancel(); err != nil {
			right.Close()
			ctx.Release(charged)
			return nil, err
		}
		row, err := right.Next()
		if err != nil {
			right.Close()
			ctx.Release(charged)
			return nil, err
		}
		if row == nil {
			break
		}
		b := rowBytes(row)
		if err := ctx.Grow(b); err != nil {
			right.Close()
			ctx.Release(charged)
			return nil, err
		}
		charged += b
		rows = append(rows, row)
	}
	right.Close()
	left, err := j.Left.Open(ctx)
	if err != nil {
		ctx.Release(charged)
		return nil, err
	}
	return &nljIter{ctx: ctx, j: j, left: left, right: rows, ri: len(rows), charged: charged}, nil
}

type nljIter struct {
	ctx     *Context
	j       *NestedLoopJoin
	left    Iterator
	right   []types.Row
	leftRow types.Row
	ri      int
	charged int64
}

func (it *nljIter) Next() (types.Row, error) {
	for {
		if err := it.ctx.CheckCancel(); err != nil {
			return nil, err
		}
		for it.ri < len(it.right) {
			joined := types.ConcatRows(it.leftRow, it.right[it.ri])
			it.ri++
			if it.j.On != nil {
				ok, err := expr.EvalBool(it.j.On, &expr.Env{Row: joined, Params: it.ctx.Params})
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			return joined, nil
		}
		row, err := it.left.Next()
		if err != nil || row == nil {
			return nil, err
		}
		it.leftRow = row
		it.ri = 0
	}
}

func (it *nljIter) Close() {
	it.left.Close()
	it.ctx.Release(it.charged)
	it.charged = 0
}
