package exec

import (
	"fmt"
	"sort"
	"time"

	"grfusion/internal/types"
)

// Instrumented wraps one physical operator with per-operator execution
// accounting: rows produced, Next calls, and cumulative wall time spent in
// the subtree (Open plus every Next). It is the executor's PROFILE layer:
// plans run uninstrumented by default, and EXPLAIN ANALYZE (or the
// slow-query log) rebuilds the tree through Instrument before running it,
// so the per-row timestamp reads are paid only when somebody asked to see
// them.
type Instrumented struct {
	// Op is the wrapped operator; Children() of the wrapper returns the
	// wrapped children, so exec.Explain renders the annotated tree.
	Op       Operator
	children []Operator

	openNS     int64 // wall time inside Op.Open
	nextNS     int64 // wall time inside the *timed* Next calls
	nexts      int64 // Next calls (including the exhausted one)
	timedNexts int64 // Next calls that actually read the clock
	rows       int64 // rows produced
}

// Timing is sampled, not exhaustive: reading the clock twice around every
// Next would tax fast row streams by double-digit percentages, which is
// exactly what a profiler must not do. The first sampleExact calls are
// timed precisely (so small iterators stay exact), then one call in
// sampleEvery; reported times extrapolate from the timed sample. The
// numbers keep the armed slow-query-log overhead inside the measurement
// noise on sub-millisecond traversal statements (the grbench
// "observability" experiment is the regression check).
const (
	sampleExact = 8
	sampleEvery = 64
)

// Instrument rebuilds the operator tree with every node wrapped in an
// Instrumented shell. The original operators are shared, not copied —
// inner nodes are shallow-copied only to repoint their child fields at the
// wrapped children — so instrumenting a plan never perturbs what it
// computes, and the uninstrumented plan remains usable.
func Instrument(root Operator) *Instrumented {
	return instrument(root)
}

func instrument(op Operator) *Instrumented {
	switch o := op.(type) {
	case *Filter:
		c := *o
		w := instrument(o.Child)
		c.Child = w
		return &Instrumented{Op: &c, children: []Operator{w}}
	case *Project:
		c := *o
		w := instrument(o.Child)
		c.Child = w
		return &Instrumented{Op: &c, children: []Operator{w}}
	case *Limit:
		c := *o
		w := instrument(o.Child)
		c.Child = w
		return &Instrumented{Op: &c, children: []Operator{w}}
	case *Sort:
		c := *o
		w := instrument(o.Child)
		c.Child = w
		return &Instrumented{Op: &c, children: []Operator{w}}
	case *Distinct:
		c := *o
		w := instrument(o.Child)
		c.Child = w
		return &Instrumented{Op: &c, children: []Operator{w}}
	case *Materialize:
		c := *o
		w := instrument(o.Child)
		c.Child = w
		return &Instrumented{Op: &c, children: []Operator{w}}
	case *HashAggregate:
		c := *o
		w := instrument(o.Child)
		c.Child = w
		return &Instrumented{Op: &c, children: []Operator{w}}
	case *HashJoin:
		c := *o
		l, r := instrument(o.Left), instrument(o.Right)
		c.Left, c.Right = l, r
		return &Instrumented{Op: &c, children: []Operator{l, r}}
	case *NestedLoopJoin:
		c := *o
		l, r := instrument(o.Left), instrument(o.Right)
		c.Left, c.Right = l, r
		return &Instrumented{Op: &c, children: []Operator{l, r}}
	case *PathProbeJoin:
		c := *o
		w := instrument(o.Outer)
		c.Outer = w
		return &Instrumented{Op: &c, children: []Operator{w}}
	default:
		// Leaves (SeqScan, IndexScan, IndexRangeScan, VertexScan, EdgeScan,
		// Singleton) and any operator this switch does not know: wrap as-is.
		// An unknown inner node still executes correctly — its subtree just
		// is not individually timed.
		return &Instrumented{Op: op, children: op.Children()}
	}
}

// Schema implements Operator.
func (n *Instrumented) Schema() *types.Schema { return n.Op.Schema() }

// Children implements Operator: it returns the instrumented children so
// exec.Explain renders annotations at every level.
func (n *Instrumented) Children() []Operator { return n.children }

// Explain implements Operator: the wrapped operator's line plus actuals.
func (n *Instrumented) Explain() string {
	return fmt.Sprintf("%s (actual rows=%d nexts=%d time=%s)",
		n.Op.Explain(), n.rows, n.nexts, fmtDuration(n.CumulativeNS()))
}

// Open implements Operator.
func (n *Instrumented) Open(ctx *Context) (Iterator, error) {
	t0 := time.Now()
	it, err := n.Op.Open(ctx)
	n.openNS += time.Since(t0).Nanoseconds()
	if err != nil {
		return nil, err
	}
	return &instrumentedIter{n: n, it: it}, nil
}

type instrumentedIter struct {
	n  *Instrumented
	it Iterator
}

func (i *instrumentedIter) Next() (types.Row, error) {
	n := i.n
	timed := n.nexts < sampleExact || n.nexts%sampleEvery == 0
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	row, err := i.it.Next()
	if timed {
		n.nextNS += time.Since(t0).Nanoseconds()
		n.timedNexts++
	}
	n.nexts++
	if row != nil {
		n.rows++
	}
	return row, err
}

func (i *instrumentedIter) Close() { i.it.Close() }

// Rows reports how many rows the node produced.
func (n *Instrumented) Rows() int64 { return n.rows }

// NextCalls reports how many times Next was called on the node.
func (n *Instrumented) NextCalls() int64 { return n.nexts }

// CumulativeNS is the wall time spent in the node's subtree: its Open plus
// all its Next calls (which include time spent pulling from children).
// When only a sample of Next calls was timed, the total is extrapolated
// from the sample's average.
func (n *Instrumented) CumulativeNS() int64 {
	ns := n.nextNS
	if n.timedNexts > 0 && n.nexts > n.timedNexts {
		ns = int64(float64(ns) * float64(n.nexts) / float64(n.timedNexts))
	}
	return n.openNS + ns
}

// SelfNS is the node's own wall time: cumulative minus the cumulative time
// of its instrumented children (clamped at zero against clock skew).
func (n *Instrumented) SelfNS() int64 {
	self := n.CumulativeNS()
	for _, c := range n.children {
		if ic, ok := c.(*Instrumented); ok {
			self -= ic.CumulativeNS()
		}
	}
	if self < 0 {
		self = 0
	}
	return self
}

// OpLine renders the wrapped operator's un-annotated Explain line.
func (n *Instrumented) OpLine() string { return n.Op.Explain() }

// Walk visits the instrumented tree pre-order.
func (n *Instrumented) Walk(fn func(*Instrumented)) {
	fn(n)
	for _, c := range n.children {
		if ic, ok := c.(*Instrumented); ok {
			ic.Walk(fn)
		}
	}
}

// OpCost is one operator's contribution to a statement, used by the
// slow-query log's "top operators" line.
type OpCost struct {
	Line   string // the operator's Explain line
	SelfNS int64
	Rows   int64
}

// TopOperators returns the k most expensive operators by self time,
// descending.
func TopOperators(root *Instrumented, k int) []OpCost {
	var all []OpCost
	root.Walk(func(n *Instrumented) {
		all = append(all, OpCost{Line: n.OpLine(), SelfNS: n.SelfNS(), Rows: n.Rows()})
	})
	sort.SliceStable(all, func(i, j int) bool { return all[i].SelfNS > all[j].SelfNS })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// fmtDuration renders nanoseconds the way EXPLAIN ANALYZE shows times:
// sub-millisecond values keep microsecond precision, larger ones show
// milliseconds with two decimals.
func fmtDuration(ns int64) string {
	d := time.Duration(ns)
	if d < time.Millisecond {
		return fmt.Sprintf("%.3fms", float64(ns)/1e6)
	}
	return fmt.Sprintf("%.2fms", float64(ns)/1e6)
}
