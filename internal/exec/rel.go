package exec

import (
	"fmt"
	"sort"
	"strings"

	"grfusion/internal/expr"
	"grfusion/internal/types"
)

// Filter passes rows satisfying the predicate.
type Filter struct {
	Child Operator
	Pred  expr.Expr
}

// NewFilter wraps child with a predicate (bound to child's schema).
func NewFilter(child Operator, pred expr.Expr) *Filter {
	return &Filter{Child: child, Pred: pred}
}

// Schema implements Operator.
func (f *Filter) Schema() *types.Schema { return f.Child.Schema() }

// Explain implements Operator.
func (f *Filter) Explain() string { return fmt.Sprintf("Filter %s", f.Pred) }

// Children implements Operator.
func (f *Filter) Children() []Operator { return []Operator{f.Child} }

// Open implements Operator.
func (f *Filter) Open(ctx *Context) (Iterator, error) {
	child, err := f.Child.Open(ctx)
	if err != nil {
		return nil, err
	}
	return &filterIter{ctx: ctx, f: f, child: child}, nil
}

type filterIter struct {
	ctx   *Context
	f     *Filter
	child Iterator
}

func (it *filterIter) Next() (types.Row, error) {
	for {
		row, err := it.child.Next()
		if err != nil || row == nil {
			return nil, err
		}
		ok, err := expr.EvalBool(it.f.Pred, &expr.Env{Row: row, Params: it.ctx.Params})
		if err != nil {
			return nil, err
		}
		if ok {
			return row, nil
		}
	}
}
func (it *filterIter) Close() { it.child.Close() }

// Project computes the output expressions for each input row.
type Project struct {
	Child Operator
	Exprs []expr.Expr
	Out   *types.Schema
}

// NewProject creates a projection with the given output schema (one column
// per expression).
func NewProject(child Operator, exprs []expr.Expr, out *types.Schema) *Project {
	return &Project{Child: child, Exprs: exprs, Out: out}
}

// Schema implements Operator.
func (p *Project) Schema() *types.Schema { return p.Out }

// Explain implements Operator.
func (p *Project) Explain() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return "Project " + strings.Join(parts, ", ")
}

// Children implements Operator.
func (p *Project) Children() []Operator { return []Operator{p.Child} }

// Open implements Operator.
func (p *Project) Open(ctx *Context) (Iterator, error) {
	child, err := p.Child.Open(ctx)
	if err != nil {
		return nil, err
	}
	return &projectIter{ctx: ctx, p: p, child: child}, nil
}

type projectIter struct {
	ctx   *Context
	p     *Project
	child Iterator
}

func (it *projectIter) Next() (types.Row, error) {
	row, err := it.child.Next()
	if err != nil || row == nil {
		return nil, err
	}
	out := make(types.Row, len(it.p.Exprs))
	env := &expr.Env{Row: row, Params: it.ctx.Params}
	for i, e := range it.p.Exprs {
		v, err := expr.Eval(e, env)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
func (it *projectIter) Close() { it.child.Close() }

// Limit emits at most N rows after skipping Offset.
type Limit struct {
	Child  Operator
	N      int // negative means no limit
	Offset int
}

// NewLimit wraps child with LIMIT/OFFSET.
func NewLimit(child Operator, n, offset int) *Limit {
	return &Limit{Child: child, N: n, Offset: offset}
}

// Schema implements Operator.
func (l *Limit) Schema() *types.Schema { return l.Child.Schema() }

// Explain implements Operator.
func (l *Limit) Explain() string { return fmt.Sprintf("Limit %d offset %d", l.N, l.Offset) }

// Children implements Operator.
func (l *Limit) Children() []Operator { return []Operator{l.Child} }

// Open implements Operator.
func (l *Limit) Open(ctx *Context) (Iterator, error) {
	child, err := l.Child.Open(ctx)
	if err != nil {
		return nil, err
	}
	return &limitIter{l: l, child: child, skip: l.Offset}, nil
}

type limitIter struct {
	l     *Limit
	child Iterator
	skip  int
	n     int
	done  bool
}

func (it *limitIter) Next() (types.Row, error) {
	if it.done {
		return nil, nil
	}
	for it.skip > 0 {
		row, err := it.child.Next()
		if err != nil || row == nil {
			it.done = true
			return nil, err
		}
		it.skip--
	}
	if it.l.N >= 0 && it.n >= it.l.N {
		it.done = true
		return nil, nil
	}
	row, err := it.child.Next()
	if err != nil || row == nil {
		it.done = true
		return nil, err
	}
	it.n++
	return row, nil
}
func (it *limitIter) Close() { it.child.Close() }

// SortKey is one ordering key.
type SortKey struct {
	E    expr.Expr
	Desc bool
}

// Sort materializes and orders its input.
type Sort struct {
	Child Operator
	Keys  []SortKey
}

// NewSort creates a sort operator.
func NewSort(child Operator, keys []SortKey) *Sort { return &Sort{Child: child, Keys: keys} }

// Schema implements Operator.
func (s *Sort) Schema() *types.Schema { return s.Child.Schema() }

// Explain implements Operator.
func (s *Sort) Explain() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		parts[i] = k.E.String()
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	return "Sort " + strings.Join(parts, ", ")
}

// Children implements Operator.
func (s *Sort) Children() []Operator { return []Operator{s.Child} }

// Open implements Operator.
func (s *Sort) Open(ctx *Context) (Iterator, error) {
	child, err := s.Child.Open(ctx)
	if err != nil {
		return nil, err
	}
	defer child.Close()
	type sortRow struct {
		row  types.Row
		keys types.Row
	}
	var rows []sortRow
	var charged int64
	for {
		if err := ctx.CheckCancel(); err != nil {
			ctx.Release(charged)
			return nil, err
		}
		row, err := child.Next()
		if err != nil {
			ctx.Release(charged)
			return nil, err
		}
		if row == nil {
			break
		}
		keys := make(types.Row, len(s.Keys))
		env := &expr.Env{Row: row, Params: ctx.Params}
		for i, k := range s.Keys {
			v, err := expr.Eval(k.E, env)
			if err != nil {
				ctx.Release(charged)
				return nil, err
			}
			keys[i] = v
		}
		b := rowBytes(row)
		if err := ctx.Grow(b); err != nil {
			ctx.Release(charged)
			return nil, err
		}
		charged += b
		rows = append(rows, sortRow{row: row, keys: keys})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for k, key := range s.Keys {
			c := types.Compare(rows[i].keys[k], rows[j].keys[k])
			if c == 0 {
				continue
			}
			if key.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	out := make([]types.Row, len(rows))
	for i := range rows {
		out[i] = rows[i].row
	}
	return &sliceIter{ctx: ctx, rows: out, charged: charged}, nil
}

type sliceIter struct {
	ctx     *Context
	rows    []types.Row
	i       int
	charged int64
}

func (it *sliceIter) Next() (types.Row, error) {
	if it.i >= len(it.rows) {
		return nil, nil
	}
	r := it.rows[it.i]
	it.i++
	return r, nil
}
func (it *sliceIter) Close() {
	if it.charged > 0 {
		it.ctx.Release(it.charged)
		it.charged = 0
	}
}

// Distinct removes duplicate rows (path values compare by rendered string).
type Distinct struct {
	Child Operator
}

// NewDistinct wraps child with duplicate elimination.
func NewDistinct(child Operator) *Distinct { return &Distinct{Child: child} }

// Schema implements Operator.
func (d *Distinct) Schema() *types.Schema { return d.Child.Schema() }

// Explain implements Operator.
func (d *Distinct) Explain() string { return "Distinct" }

// Children implements Operator.
func (d *Distinct) Children() []Operator { return []Operator{d.Child} }

// Open implements Operator.
func (d *Distinct) Open(ctx *Context) (Iterator, error) {
	child, err := d.Child.Open(ctx)
	if err != nil {
		return nil, err
	}
	return &distinctIter{ctx: ctx, child: child, seen: map[string]bool{}}, nil
}

type distinctIter struct {
	ctx     *Context
	child   Iterator
	seen    map[string]bool
	charged int64
}

func (it *distinctIter) Next() (types.Row, error) {
	for {
		row, err := it.child.Next()
		if err != nil || row == nil {
			return nil, err
		}
		key := distinctKey(row)
		if it.seen[key] {
			continue
		}
		it.seen[key] = true
		b := int64(len(key))
		if err := it.ctx.Grow(b); err != nil {
			return nil, err
		}
		it.charged += b
		return row, nil
	}
}
func (it *distinctIter) Close() {
	it.child.Close()
	it.ctx.Release(it.charged)
	it.charged = 0
}

func distinctKey(row types.Row) string {
	var sb strings.Builder
	for _, v := range row {
		if v.Kind >= types.KindVertex {
			sb.WriteString(v.String())
		} else {
			v.AppendKey(&sb)
		}
		sb.WriteByte(0x1f)
	}
	return sb.String()
}
