package exec

import (
	"strings"
	"testing"

	"grfusion/internal/catalog"
	"grfusion/internal/expr"
	"grfusion/internal/graph"
	"grfusion/internal/storage"
	"grfusion/internal/types"
)

// newTable builds a table with schema (id BIGINT PK, grp VARCHAR, val BIGINT)
// and n rows: (i, "g<i%3>", i*10).
func newTable(t *testing.T, name string, n int) *storage.Table {
	t.Helper()
	tb, err := storage.NewTable(name, types.NewSchema(
		types.Column{Qualifier: name, Name: "id", Type: types.KindInt},
		types.Column{Qualifier: name, Name: "grp", Type: types.KindString},
		types.Column{Qualifier: name, Name: "val", Type: types.KindInt},
	), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	groups := []string{"g0", "g1", "g2"}
	for i := 0; i < n; i++ {
		if _, err := tb.Insert(types.Row{
			types.NewInt(int64(i)), types.NewString(groups[i%3]), types.NewInt(int64(i * 10)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func col(t *testing.T, s *types.Schema, qual, name string) *expr.ColumnRef {
	t.Helper()
	b := expr.NewBinder(s)
	e, err := b.Bind(&expr.ColumnRef{Qualifier: qual, Name: name, Idx: -1})
	if err != nil {
		t.Fatal(err)
	}
	return e.(*expr.ColumnRef)
}

func intLit(i int64) *expr.Literal { return &expr.Literal{Val: types.NewInt(i)} }

func collect(t *testing.T, op Operator) []types.Row {
	t.Helper()
	rows, err := Collect(NewContext(0), op)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestSingleton(t *testing.T) {
	rows := collect(t, Singleton{})
	if len(rows) != 1 || len(rows[0]) != 0 {
		t.Fatalf("singleton: %v", rows)
	}
}

func TestSeqScanWithFilter(t *testing.T) {
	tb := newTable(t, "t", 10)
	scan := NewSeqScan(tb, "t", nil)
	if got := len(collect(t, scan)); got != 10 {
		t.Fatalf("unfiltered: %d", got)
	}
	pred := &expr.BinaryExpr{Op: expr.OpGe, L: col(t, scan.Schema(), "t", "val"), R: intLit(50)}
	rows := collect(t, NewSeqScan(tb, "t", pred))
	if len(rows) != 5 {
		t.Fatalf("filtered: %d", len(rows))
	}
}

func TestIndexScan(t *testing.T) {
	tb := newTable(t, "t", 9)
	ix, err := tb.CreateIndex("byGrp", []int{1}, false)
	if err != nil {
		t.Fatal(err)
	}
	scan := NewIndexScan(tb, "t", ix, []expr.Expr{&expr.Literal{Val: types.NewString("g1")}}, nil)
	rows := collect(t, scan)
	if len(rows) != 3 {
		t.Fatalf("index rows: %d", len(rows))
	}
	for _, r := range rows {
		if r[1].S != "g1" {
			t.Fatalf("wrong group: %v", r)
		}
	}
	// With an extra residual filter.
	pred := &expr.BinaryExpr{Op: expr.OpGt, L: col(t, scan.Schema(), "t", "id"), R: intLit(1)}
	rows = collect(t, NewIndexScan(tb, "t", ix, []expr.Expr{&expr.Literal{Val: types.NewString("g1")}}, pred))
	if len(rows) != 2 {
		t.Fatalf("index+filter rows: %d", len(rows))
	}
}

func TestProjectAndLimit(t *testing.T) {
	tb := newTable(t, "t", 6)
	scan := NewSeqScan(tb, "t", nil)
	proj := NewProject(scan,
		[]expr.Expr{&expr.BinaryExpr{Op: expr.OpAdd, L: col(t, scan.Schema(), "t", "id"), R: intLit(100)}},
		types.NewSchema(types.Column{Name: "x", Type: types.KindInt}))
	rows := collect(t, NewLimit(proj, 3, 1))
	if len(rows) != 3 || rows[0][0].I != 101 {
		t.Fatalf("project+limit: %v", rows)
	}
	// Limit 0 yields nothing; negative N means unlimited.
	if got := len(collect(t, NewLimit(proj, 0, 0))); got != 0 {
		t.Fatalf("limit 0: %d", got)
	}
	if got := len(collect(t, NewLimit(proj, -1, 4))); got != 2 {
		t.Fatalf("offset only: %d", got)
	}
}

func TestSortAscDescStable(t *testing.T) {
	tb := newTable(t, "t", 7)
	scan := NewSeqScan(tb, "t", nil)
	rows := collect(t, NewSort(scan, []SortKey{
		{E: col(t, scan.Schema(), "t", "grp")},
		{E: col(t, scan.Schema(), "t", "id"), Desc: true},
	}))
	if len(rows) != 7 {
		t.Fatal("lost rows")
	}
	// Groups ascending; within group ids descending.
	if rows[0][1].S != "g0" || rows[0][0].I != 6 {
		t.Fatalf("first: %v", rows[0])
	}
	last := rows[len(rows)-1]
	if last[1].S != "g2" || last[0].I != 2 {
		t.Fatalf("last: %v", last)
	}
}

func TestDistinctOp(t *testing.T) {
	tb := newTable(t, "t", 9)
	scan := NewSeqScan(tb, "t", nil)
	proj := NewProject(scan, []expr.Expr{col(t, scan.Schema(), "t", "grp")},
		types.NewSchema(types.Column{Name: "grp", Type: types.KindString}))
	rows := collect(t, NewDistinct(proj))
	if len(rows) != 3 {
		t.Fatalf("distinct: %v", rows)
	}
}

func TestHashJoinBasics(t *testing.T) {
	a := newTable(t, "a", 6)
	b := newTable(t, "b", 4)
	sa := NewSeqScan(a, "a", nil)
	sb := NewSeqScan(b, "b", nil)
	j := NewHashJoin(sa, sb,
		[]expr.Expr{col(t, sa.Schema(), "a", "id")},
		[]expr.Expr{col(t, sb.Schema(), "b", "id")}, nil)
	rows := collect(t, j)
	if len(rows) != 4 {
		t.Fatalf("join rows: %d", len(rows))
	}
	if len(rows[0]) != 6 {
		t.Fatalf("join width: %d", len(rows[0]))
	}
	// Residual predicate filters matches.
	j2 := NewHashJoin(sa, sb,
		[]expr.Expr{col(t, sa.Schema(), "a", "id")},
		[]expr.Expr{col(t, sb.Schema(), "b", "id")},
		&expr.BinaryExpr{Op: expr.OpGt, L: col(t, j.Schema(), "a", "val"), R: intLit(10)})
	if got := len(collect(t, j2)); got != 2 {
		t.Fatalf("residual join rows: %d", got)
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	a, _ := storage.NewTable("a", types.NewSchema(
		types.Column{Qualifier: "a", Name: "k", Type: types.KindInt}), nil)
	a.Insert(types.Row{types.Null()})
	a.Insert(types.Row{types.NewInt(1)})
	b, _ := storage.NewTable("b", types.NewSchema(
		types.Column{Qualifier: "b", Name: "k", Type: types.KindInt}), nil)
	b.Insert(types.Row{types.Null()})
	b.Insert(types.Row{types.NewInt(1)})
	sa, sb := NewSeqScan(a, "a", nil), NewSeqScan(b, "b", nil)
	j := NewHashJoin(sa, sb,
		[]expr.Expr{col(t, sa.Schema(), "a", "k")},
		[]expr.Expr{col(t, sb.Schema(), "b", "k")}, nil)
	rows := collect(t, j)
	if len(rows) != 1 {
		t.Fatalf("null keys joined: %v", rows)
	}
}

func TestNestedLoopJoinCross(t *testing.T) {
	a := newTable(t, "a", 3)
	b := newTable(t, "b", 4)
	j := NewNestedLoopJoin(NewSeqScan(a, "a", nil), NewSeqScan(b, "b", nil), nil)
	if got := len(collect(t, j)); got != 12 {
		t.Fatalf("cross rows: %d", got)
	}
}

func TestMemoryAccounting(t *testing.T) {
	a := newTable(t, "a", 50)
	b := newTable(t, "b", 50)
	j := NewNestedLoopJoin(NewSeqScan(a, "a", nil), NewSeqScan(b, "b", nil), nil)
	ctx := NewContext(128) // tiny budget
	if _, err := Collect(ctx, j); err == nil || !strings.Contains(err.Error(), "memory limit") {
		t.Fatalf("expected memory abort, got %v", err)
	}
	// Budget is released after Close: a fresh small query succeeds.
	ctx2 := NewContext(1 << 20)
	if _, err := Collect(ctx2, j); err != nil {
		t.Fatal(err)
	}
	if ctx2.MemUsed() != 0 {
		t.Errorf("memory not released: %d", ctx2.MemUsed())
	}
}

func TestMaterializeOp(t *testing.T) {
	tb := newTable(t, "t", 5)
	m := NewMaterialize(NewSeqScan(tb, "t", nil))
	rows := collect(t, m)
	if len(rows) != 5 {
		t.Fatalf("materialize rows: %d", len(rows))
	}
	ctx := NewContext(16)
	if _, err := Collect(ctx, m); err == nil {
		t.Fatal("materialize ignored the budget")
	}
}

func TestHashAggregateGroups(t *testing.T) {
	tb := newTable(t, "t", 9)
	scan := NewSeqScan(tb, "t", nil)
	agg := NewHashAggregate(scan,
		[]expr.Expr{col(t, scan.Schema(), "t", "grp")},
		[]AggSpec{
			{Name: "COUNT"},
			{Name: "SUM", Arg: col(t, scan.Schema(), "t", "val")},
			{Name: "MIN", Arg: col(t, scan.Schema(), "t", "id")},
		},
		types.NewSchema(
			types.Column{Name: "grp", Type: types.KindString},
			types.Column{Name: "n", Type: types.KindInt},
			types.Column{Name: "s", Type: types.KindInt},
			types.Column{Name: "m", Type: types.KindInt},
		))
	rows := collect(t, agg)
	if len(rows) != 3 {
		t.Fatalf("groups: %v", rows)
	}
	// First-seen order: g0 first (id 0).
	if rows[0][0].S != "g0" || rows[0][1].I != 3 || rows[0][2].I != 90 || rows[0][3].I != 0 {
		t.Fatalf("g0 aggregate: %v", rows[0])
	}
}

func TestHashAggregateGlobalEmptyInput(t *testing.T) {
	tb := newTable(t, "t", 0)
	scan := NewSeqScan(tb, "t", nil)
	agg := NewHashAggregate(scan, nil,
		[]AggSpec{{Name: "COUNT"}},
		types.NewSchema(types.Column{Name: "n", Type: types.KindInt}))
	rows := collect(t, agg)
	if len(rows) != 1 || rows[0][0].I != 0 {
		t.Fatalf("empty global agg: %v", rows)
	}
}

func TestExplainTreeRendering(t *testing.T) {
	tb := newTable(t, "t", 3)
	scan := NewSeqScan(tb, "t", nil)
	lim := NewLimit(NewFilter(scan, &expr.Literal{Val: types.NewBool(true)}), 1, 0)
	out := Explain(lim)
	if !strings.Contains(out, "Limit") || !strings.Contains(out, "  Filter") ||
		!strings.Contains(out, "    SeqScan") {
		t.Errorf("explain:\n%s", out)
	}
}

// graphFixture builds a tiny social graph view for graph-operator tests.
func graphFixture(t *testing.T) *catalog.GraphView {
	t.Helper()
	vt, _ := storage.NewTable("v", types.NewSchema(
		types.Column{Qualifier: "v", Name: "vid", Type: types.KindInt},
		types.Column{Qualifier: "v", Name: "name", Type: types.KindString},
	), []int{0})
	et, _ := storage.NewTable("e", types.NewSchema(
		types.Column{Qualifier: "e", Name: "eid", Type: types.KindInt},
		types.Column{Qualifier: "e", Name: "src", Type: types.KindInt},
		types.Column{Qualifier: "e", Name: "dst", Type: types.KindInt},
		types.Column{Qualifier: "e", Name: "w", Type: types.KindInt},
	), []int{0})
	for i := int64(1); i <= 4; i++ {
		vt.Insert(types.Row{types.NewInt(i), types.NewString("v" + types.NewInt(i).String())})
	}
	// 1->2->3->4 and shortcut 1->4 with weights 1,1,1,10.
	edges := [][4]int64{{1, 1, 2, 1}, {2, 2, 3, 1}, {3, 3, 4, 1}, {4, 1, 4, 10}}
	for _, e := range edges {
		et.Insert(types.Row{types.NewInt(e[0]), types.NewInt(e[1]), types.NewInt(e[2]), types.NewInt(e[3])})
	}
	gv, err := catalog.NewGraphView("G", true, vt, et,
		[]catalog.AttrMap{{Name: "ID", Source: "vid"}, {Name: "name", Source: "name"}},
		[]catalog.AttrMap{{Name: "ID", Source: "eid"}, {Name: "FROM", Source: "src"},
			{Name: "TO", Source: "dst"}, {Name: "w", Source: "w"}})
	if err != nil {
		t.Fatal(err)
	}
	return gv
}

func TestVertexAndEdgeScanOps(t *testing.T) {
	gv := graphFixture(t)
	vs := NewVertexScan(gv, "VS", nil)
	rows := collect(t, vs)
	if len(rows) != 4 {
		t.Fatalf("vertex rows: %d", len(rows))
	}
	// Schema: ID, name, FANOUT, FANIN.
	if len(rows[0]) != 4 || rows[0][0].I != 1 || rows[0][2].I != 2 {
		t.Fatalf("vertex row: %v", rows[0])
	}
	es := NewEdgeScan(gv, "ES", nil)
	erows := collect(t, es)
	if len(erows) != 4 || len(erows[0]) != 4 {
		t.Fatalf("edge rows: %v", erows)
	}
}

func TestPathProbeJoinStandalone(t *testing.T) {
	gv := graphFixture(t)
	spec := PathScanSpec{
		GV: gv, Alias: "P", Phys: PhysDFS, MinLen: 1, MaxLen: 3, KPaths: 1,
		StartExpr: intLit(1),
	}
	pp := NewPathProbeJoin(Singleton{}, spec, nil)
	rows := collect(t, pp)
	// Visit-once DFS from 1 over 1->2->3->4 plus 1->4: tree paths.
	if len(rows) == 0 {
		t.Fatal("no paths")
	}
	for _, r := range rows {
		if r[len(r)-1].Kind != types.KindPath {
			t.Fatalf("missing path column: %v", r)
		}
	}
}

func TestPathProbeJoinOuterProbes(t *testing.T) {
	gv := graphFixture(t)
	// Outer: vertex scan restricted to id 1 and 2; each probes a traversal.
	vs := NewVertexScan(gv, "VS", &expr.BinaryExpr{Op: expr.OpLe,
		L: col(t, gv.VertexSchema().WithQualifier("VS"), "VS", "ID"), R: intLit(2)})
	spec := PathScanSpec{
		GV: gv, Alias: "P", Phys: PhysBFS, MinLen: 1, MaxLen: 1, KPaths: 1,
		StartExpr: col(t, vs.Schema(), "VS", "ID"),
	}
	pp := NewPathProbeJoin(vs, spec, nil)
	rows := collect(t, pp)
	// From 1: edges to 2 and 4; from 2: edge to 3 => 3 length-1 paths.
	if len(rows) != 3 {
		t.Fatalf("probe rows: %d", len(rows))
	}
}

func TestPathProbeJoinSPWithKPaths(t *testing.T) {
	gv := graphFixture(t)
	spec := PathScanSpec{
		GV: gv, Alias: "P", Phys: PhysSP, MinLen: 1, WeightAttr: "w", KPaths: 2,
		StartExpr: intLit(1), EndExpr: intLit(4),
	}
	pp := NewPathProbeJoin(Singleton{}, spec, nil)
	rows := collect(t, pp)
	if len(rows) != 2 {
		t.Fatalf("k-shortest rows: %d", len(rows))
	}
	p0 := rows[0][0].Ref
	p1 := rows[1][0].Ref
	if p0 == nil || p1 == nil {
		t.Fatal("nil paths")
	}
}

func TestPathProbeEdgeFilterPushdown(t *testing.T) {
	gv := graphFixture(t)
	// Filter w < 5 on every position kills the 1->4 shortcut.
	spec := PathScanSpec{
		GV: gv, Alias: "P", Phys: PhysDFS, MinLen: 1, MaxLen: 1, KPaths: 1,
		StartExpr: intLit(1),
		EdgeFilters: []ElemFilter{{
			Elem: expr.ElemEdges, Rng: expr.Rng{Start: 0, Wildcard: true},
			Attr: "w", Op: expr.OpLt, Other: intLit(5),
		}},
	}
	rows := collect(t, NewPathProbeJoin(Singleton{}, spec, nil))
	if len(rows) != 1 {
		t.Fatalf("filtered paths: %d", len(rows))
	}
}

func TestContextCounters(t *testing.T) {
	gv := graphFixture(t)
	spec := PathScanSpec{
		GV: gv, Alias: "P", Phys: PhysBFS, MinLen: 1, KPaths: 1,
		StartExpr: intLit(1),
	}
	ctx := NewContext(0)
	rows, err := Collect(ctx, NewPathProbeJoin(Singleton{}, spec, nil))
	if err != nil {
		t.Fatal(err)
	}
	if ctx.PathsEmitted != int64(len(rows)) {
		t.Errorf("paths emitted %d != rows %d", ctx.PathsEmitted, len(rows))
	}
	if ctx.EdgesTraversed == 0 {
		t.Error("edge counter never incremented")
	}
}

func TestIndexRangeScanOp(t *testing.T) {
	tb := newTable(t, "t", 10)
	ix, err := tb.CreateIndex("ord", []int{2}, true)
	if err != nil {
		t.Fatal(err)
	}
	// [30, 60) → vals 30, 40, 50.
	rs := NewIndexRangeScan(tb, "t", ix, intLit(30), intLit(60), true, false, nil)
	rows := collect(t, rs)
	if len(rows) != 3 || rows[0][2].I != 30 || rows[2][2].I != 50 {
		t.Fatalf("range rows: %v", rows)
	}
	// Open-ended low bound with residual filter.
	pred := &expr.BinaryExpr{Op: expr.OpGt, L: col(t, rs.Schema(), "t", "id"), R: intLit(7)}
	rs = NewIndexRangeScan(tb, "t", ix, nil, nil, false, false, pred)
	if got := len(collect(t, rs)); got != 2 {
		t.Fatalf("filtered range rows: %d", got)
	}
	if !strings.Contains(rs.Explain(), "IndexRangeScan") {
		t.Errorf("explain: %s", rs.Explain())
	}
	// Exclusive bounds.
	rs = NewIndexRangeScan(tb, "t", ix, intLit(30), intLit(60), false, false, nil)
	if got := len(collect(t, rs)); got != 2 {
		t.Fatalf("exclusive range rows: %d", got)
	}
}

func TestExplainStringsCoverOperators(t *testing.T) {
	tb := newTable(t, "t", 2)
	gv := graphFixture(t)
	sa := NewSeqScan(tb, "t", nil)
	ops := []Operator{
		NewHashJoin(sa, NewSeqScan(tb, "u", nil),
			[]expr.Expr{col(t, sa.Schema(), "t", "id")},
			[]expr.Expr{col(t, sa.Schema(), "t", "id")},
			&expr.Literal{Val: types.NewBool(true)}),
		NewNestedLoopJoin(sa, sa, nil),
		NewNestedLoopJoin(sa, sa, &expr.Literal{Val: types.NewBool(true)}),
		NewMaterialize(sa),
		NewHashAggregate(sa, []expr.Expr{col(t, sa.Schema(), "t", "grp")},
			[]AggSpec{{Name: "COUNT"}, {Name: "SUM", Arg: col(t, sa.Schema(), "t", "val")}},
			types.NewSchema(types.Column{Name: "g"}, types.Column{Name: "n"}, types.Column{Name: "s"})),
		NewPathProbeJoin(Singleton{}, PathScanSpec{
			GV: gv, Alias: "P", Phys: PhysSP, MinLen: 1, MaxLen: 3, WeightAttr: "w",
			KPaths: 2, StartExpr: intLit(1), EndExpr: intLit(4), CycleClose: true,
			Policy:      graph.VisitPerPath,
			EdgeFilters: []ElemFilter{{Elem: expr.ElemEdges, Attr: "w", Op: expr.OpLt, Other: intLit(5)}},
			AggBounds:   []AggBound{{Agg: "SUM", Attr: "w", Op: expr.OpLt, Bound: intLit(9)}},
		}, &expr.Literal{Val: types.NewBool(true)}),
	}
	for _, op := range ops {
		if op.Explain() == "" {
			t.Errorf("%T: empty explain", op)
		}
		if op.Schema() == nil {
			t.Errorf("%T: nil schema", op)
		}
		_ = op.Children()
	}
	for _, ph := range []Phys{PhysDFS, PhysBFS, PhysSP} {
		if ph.String() == "" {
			t.Error("empty phys name")
		}
	}
	f := ElemFilter{Elem: expr.ElemVertexes, Attr: "x", IsIn: true}
	if !strings.Contains(f.String(), "Vertexes") {
		t.Errorf("filter string: %s", f.String())
	}
}

func TestPathProbeAggBoundPrunes(t *testing.T) {
	gv := graphFixture(t)
	// SUM(w) < 3 admits only the first hop (w=1) and the second (1+1=2);
	// the third hop (sum 3) and the shortcut (10) are pruned.
	spec := PathScanSpec{
		GV: gv, Alias: "P", Phys: PhysDFS, MinLen: 1, KPaths: 1,
		StartExpr: intLit(1),
		AggBounds: []AggBound{{Agg: "SUM", Elem: expr.ElemEdges, Attr: "w",
			Op: expr.OpLt, Bound: intLit(3)}},
	}
	rows := collect(t, NewPathProbeJoin(Singleton{}, spec, nil))
	if len(rows) != 2 {
		t.Fatalf("agg-bound paths: %d", len(rows))
	}
	// COUNT bound behaves like a length cap.
	spec.AggBounds = []AggBound{{Agg: "COUNT", Elem: expr.ElemEdges,
		Op: expr.OpLe, Bound: intLit(1)}}
	rows = collect(t, NewPathProbeJoin(Singleton{}, spec, nil))
	if len(rows) != 2 { // 1->2 and 1->4
		t.Fatalf("count-bound paths: %d", len(rows))
	}
}

func TestPathProbeVertexFilterAndIn(t *testing.T) {
	gv := graphFixture(t)
	// Vertex filter: only vertices named v1..v3 pass (blocks v4).
	spec := PathScanSpec{
		GV: gv, Alias: "P", Phys: PhysBFS, MinLen: 1, KPaths: 1,
		StartExpr: intLit(1),
		VertexFilters: []ElemFilter{{
			Elem: expr.ElemVertexes, Rng: expr.Rng{Start: 0, Wildcard: true},
			Attr: "name", IsIn: true,
			List: []expr.Expr{
				&expr.Literal{Val: types.NewString("v1")},
				&expr.Literal{Val: types.NewString("v2")},
				&expr.Literal{Val: types.NewString("v3")},
			},
		}},
	}
	rows := collect(t, NewPathProbeJoin(Singleton{}, spec, nil))
	// 1->2 and 1->2->3 only (both edges to 4 are blocked at the vertex).
	if len(rows) != 2 {
		t.Fatalf("vertex-filtered paths: %d", len(rows))
	}
}

func TestPathProbeMissingEndpoints(t *testing.T) {
	gv := graphFixture(t)
	// Unknown start: no paths, no error.
	spec := PathScanSpec{GV: gv, Alias: "P", Phys: PhysDFS, MinLen: 1, KPaths: 1,
		StartExpr: intLit(99)}
	if got := len(collect(t, NewPathProbeJoin(Singleton{}, spec, nil))); got != 0 {
		t.Fatalf("missing start: %d rows", got)
	}
	// Unknown target short-circuits the whole probe.
	spec = PathScanSpec{GV: gv, Alias: "P", Phys: PhysBFS, MinLen: 1, KPaths: 1,
		StartExpr: intLit(1), EndExpr: intLit(99)}
	if got := len(collect(t, NewPathProbeJoin(Singleton{}, spec, nil))); got != 0 {
		t.Fatalf("missing target: %d rows", got)
	}
}

func TestPathProbeResidualFilter(t *testing.T) {
	gv := graphFixture(t)
	spec := PathScanSpec{GV: gv, Alias: "P", Phys: PhysDFS, MinLen: 1, MaxLen: 2, KPaths: 1,
		StartExpr: intLit(1)}
	pp := NewPathProbeJoin(Singleton{}, spec, nil)
	// Residual over the path column: only length-2 paths.
	residual, err := expr.NewBinder(pp.Schema()).
		WithPath("P", expr.PathBinding{Col: 0, Acc: gv}).
		Bind(&expr.BinaryExpr{Op: expr.OpEq,
			L: &expr.PathProperty{Alias: "P", Prop: expr.PropLength},
			R: intLit(2)})
	if err != nil {
		t.Fatal(err)
	}
	pp2 := NewPathProbeJoin(Singleton{}, spec, residual)
	all := collect(t, pp)
	filtered := collect(t, pp2)
	if len(filtered) >= len(all) || len(filtered) == 0 {
		t.Fatalf("residual: %d of %d", len(filtered), len(all))
	}
}
