package exec

import (
	"reflect"
	"strings"
	"testing"

	"grfusion/internal/expr"
)

// TestInstrumentCountsAndPreservesResults runs the same small plan plain
// and instrumented and requires identical output plus exact per-operator
// row counts.
func TestInstrumentCountsAndPreservesResults(t *testing.T) {
	tb := newTable(t, "t", 30)
	build := func() Operator {
		scan := NewSeqScan(tb, "t", nil)
		pred := &expr.BinaryExpr{Op: expr.OpLt, L: col(t, scan.Schema(), "t", "id"), R: intLit(10)}
		return NewLimit(NewFilter(scan, pred), 5, 0)
	}

	plain := collect(t, build())

	root := Instrument(build())
	got, err := Collect(NewContext(0), root)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, got) {
		t.Fatalf("instrumented plan changed results:\nplain: %v\ninstr: %v", plain, got)
	}

	// Limit produced 5 rows; Filter produced 5 (Limit stopped pulling);
	// the scan fed the filter whatever it asked for.
	if root.Rows() != 5 {
		t.Errorf("Limit rows = %d, want 5", root.Rows())
	}
	filter := root.Children()[0].(*Instrumented)
	if filter.Rows() != 5 {
		t.Errorf("Filter rows = %d, want 5", filter.Rows())
	}
	scan := filter.Children()[0].(*Instrumented)
	if scan.Rows() != 5 {
		t.Errorf("SeqScan rows = %d, want 5", scan.Rows())
	}
	if root.NextCalls() == 0 || root.CumulativeNS() < 0 {
		t.Errorf("missing accounting: nexts=%d time=%d", root.NextCalls(), root.CumulativeNS())
	}

	// The annotated tree renders actuals at every level.
	text := Explain(root)
	for _, want := range []string{"Limit 5", "Filter", "SeqScan t", "actual rows=5"} {
		if !strings.Contains(text, want) {
			t.Errorf("annotated plan missing %q:\n%s", want, text)
		}
	}
	if strings.Count(text, "actual rows=") != 3 {
		t.Errorf("want actuals on all 3 nodes:\n%s", text)
	}
}

// TestInstrumentDoesNotMutateOriginal verifies the shallow-copy rewrite:
// the source tree must still point at its own children afterwards.
func TestInstrumentDoesNotMutateOriginal(t *testing.T) {
	tb := newTable(t, "t", 3)
	scan := NewSeqScan(tb, "t", nil)
	limit := NewLimit(scan, 2, 0)
	Instrument(limit)
	if limit.Child != Operator(scan) {
		t.Fatal("Instrument mutated the original plan's child pointer")
	}
	rows := collect(t, limit)
	if len(rows) != 2 {
		t.Fatalf("original plan broken after Instrument: %d rows", len(rows))
	}
}

// TestInstrumentJoinShape wraps both sides of a join.
func TestInstrumentJoinShape(t *testing.T) {
	l := newTable(t, "l", 4)
	r := newTable(t, "r", 4)
	ls, rs := NewSeqScan(l, "l", nil), NewSeqScan(r, "r", nil)
	join := NewHashJoin(ls, rs,
		[]expr.Expr{col(t, ls.Schema(), "l", "id")},
		[]expr.Expr{col(t, rs.Schema(), "r", "id")}, nil)
	root := Instrument(join)
	rows, err := Collect(NewContext(0), root)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("join rows = %d, want 4", len(rows))
	}
	if len(root.Children()) != 2 {
		t.Fatalf("join wrapper children = %d, want 2", len(root.Children()))
	}
	for _, c := range root.Children() {
		ic := c.(*Instrumented)
		if ic.Rows() != 4 {
			t.Errorf("join input rows = %d, want 4", ic.Rows())
		}
	}
}

func TestTopOperators(t *testing.T) {
	tb := newTable(t, "t", 50)
	scan := NewSeqScan(tb, "t", nil)
	pred := &expr.BinaryExpr{Op: expr.OpGe, L: col(t, scan.Schema(), "t", "id"), R: intLit(0)}
	root := Instrument(NewDistinct(NewFilter(scan, pred)))
	if _, err := Collect(NewContext(0), root); err != nil {
		t.Fatal(err)
	}
	top := TopOperators(root, 2)
	if len(top) != 2 {
		t.Fatalf("top = %d entries, want 2", len(top))
	}
	if top[0].SelfNS < top[1].SelfNS {
		t.Fatalf("top operators not sorted by self time: %v", top)
	}
	all := TopOperators(root, 10)
	if len(all) != 3 {
		t.Fatalf("full walk = %d entries, want 3", len(all))
	}
}
