package exec

import (
	"fmt"
	"strings"

	"grfusion/internal/catalog"
	"grfusion/internal/expr"
	"grfusion/internal/graph"
	"grfusion/internal/storage"
	"grfusion/internal/types"
)

// Singleton produces exactly one empty row. It anchors path scans and
// constant SELECTs that have no relational input.
type Singleton struct{}

// Schema implements Operator.
func (Singleton) Schema() *types.Schema { return types.NewSchema() }

// Open implements Operator.
func (Singleton) Open(*Context) (Iterator, error) { return &singletonIter{}, nil }

// Explain implements Operator.
func (Singleton) Explain() string { return "Singleton" }

// Children implements Operator.
func (Singleton) Children() []Operator { return nil }

type singletonIter struct{ done bool }

func (s *singletonIter) Next() (types.Row, error) {
	if s.done {
		return nil, nil
	}
	s.done = true
	return types.Row{}, nil
}
func (s *singletonIter) Close() {}

// DebugPanicTable, when non-empty, makes Open of a scan over the named
// table panic — the fault-injection hook behind the server's
// panic-isolation tests, mirroring catalog.DebugSkipEdgeDelete. Never set
// outside tests.
var DebugPanicTable string

// DebugStallTable and DebugStall, when set, make Open of a scan over the
// named table call DebugStall (typically blocking on a channel) — the
// deterministic "in-flight statement" hook behind the graceful-shutdown
// tests. Never set outside tests.
var (
	DebugStallTable string
	DebugStall      func()
)

// debugScanHooks applies the test-only fault hooks for a scan over name.
func debugScanHooks(name string) {
	if DebugPanicTable != "" && strings.EqualFold(name, DebugPanicTable) {
		panic(fmt.Sprintf("exec: injected panic opening scan over %s (DebugPanicTable)", name))
	}
	if DebugStall != nil && strings.EqualFold(name, DebugStallTable) {
		DebugStall()
	}
}

// SeqScan scans a table, optionally filtering. The filter is bound against
// the scan's output schema.
type SeqScan struct {
	Table  *storage.Table
	Alias  string
	Filter expr.Expr

	// Rows is the row view the scan reads: a pinned immutable snapshot on
	// the lock-free read path, or nil to read the live table (writer-side
	// plans and directly constructed operators).
	Rows storage.RowView

	schema *types.Schema
}

// NewSeqScan creates a sequential scan over table under the given range
// variable.
func NewSeqScan(t *storage.Table, alias string, filter expr.Expr) *SeqScan {
	return &SeqScan{Table: t, Alias: alias, Filter: filter,
		schema: t.Schema().WithQualifier(alias)}
}

func (s *SeqScan) rows() storage.RowView {
	if s.Rows != nil {
		return s.Rows
	}
	return s.Table
}

// Schema implements Operator.
func (s *SeqScan) Schema() *types.Schema { return s.schema }

// Explain implements Operator.
func (s *SeqScan) Explain() string {
	out := fmt.Sprintf("SeqScan %s", s.Table.Name())
	if s.Alias != "" && s.Alias != s.Table.Name() {
		out += " AS " + s.Alias
	}
	if s.Filter != nil {
		out += fmt.Sprintf(" filter=%s", s.Filter)
	}
	return out
}

// Children implements Operator.
func (s *SeqScan) Children() []Operator { return nil }

// Open implements Operator.
func (s *SeqScan) Open(ctx *Context) (Iterator, error) {
	debugScanHooks(s.Table.Name())
	// Materialize the matching row ids up front. The row view is stable
	// for the statement's lifetime: pinned snapshots are immutable, and
	// live-table scans run with the engine lock held.
	rows := s.rows()
	var ids []storage.RowID
	rows.Scan(func(id storage.RowID, row types.Row) bool {
		ids = append(ids, id)
		return true
	})
	return &seqScanIter{ctx: ctx, s: s, rows: rows, ids: ids}, nil
}

type seqScanIter struct {
	ctx  *Context
	s    *SeqScan
	rows storage.RowView
	ids  []storage.RowID
	i    int
}

func (it *seqScanIter) Next() (types.Row, error) {
	for it.i < len(it.ids) {
		if err := it.ctx.CheckCancel(); err != nil {
			return nil, err
		}
		row, ok := it.rows.Get(it.ids[it.i])
		it.i++
		if !ok {
			continue
		}
		if it.s.Filter != nil {
			ok, err := expr.EvalBool(it.s.Filter, &expr.Env{Row: row, Params: it.ctx.Params})
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		it.ctx.RowsEmitted++
		return row, nil
	}
	return nil, nil
}
func (it *seqScanIter) Close() {}

// IndexScan fetches rows whose indexed columns equal the given key
// expressions (evaluated once at Open; they must be constant).
type IndexScan struct {
	Table  *storage.Table
	Alias  string
	Index  *storage.Index
	Keys   []expr.Expr // one per indexed column, constant
	Filter expr.Expr

	// Rows, when set, is the pinned snapshot the scan resolves rows
	// against. The index itself is live (indexes are not versioned), so a
	// pinned scan re-checks the table version around the index read and
	// falls back to filtering the snapshot when a writer raced it; see
	// Open.
	Rows storage.RowView

	schema *types.Schema
}

// NewIndexScan creates an index point-lookup scan.
func NewIndexScan(t *storage.Table, alias string, ix *storage.Index, keys []expr.Expr, filter expr.Expr) *IndexScan {
	return &IndexScan{Table: t, Alias: alias, Index: ix, Keys: keys, Filter: filter,
		schema: t.Schema().WithQualifier(alias)}
}

// Schema implements Operator.
func (s *IndexScan) Schema() *types.Schema { return s.schema }

// Explain implements Operator.
func (s *IndexScan) Explain() string {
	out := fmt.Sprintf("IndexScan %s using %s", s.Table.Name(), s.Index.Name())
	if s.Filter != nil {
		out += fmt.Sprintf(" filter=%s", s.Filter)
	}
	return out
}

// Children implements Operator.
func (s *IndexScan) Children() []Operator { return nil }

// Open implements Operator.
//
// On a pinned snapshot the scan consults the LIVE index under a
// double-check of the table's mutation version: mutators bump the version
// before touching the index, so if the version equals the snapshot's both
// before and after the index read, the index content matched the snapshot
// exactly. Any mismatch means a writer is (or was) in flight, and the
// scan degrades to filtering the snapshot by key — same rows, no index.
func (s *IndexScan) Open(ctx *Context) (Iterator, error) {
	key := make(types.Row, len(s.Keys))
	for i, e := range s.Keys {
		v, err := expr.Eval(e, &expr.Env{Params: ctx.Params})
		if err != nil {
			return nil, fmt.Errorf("index key: %v", err)
		}
		key[i] = v
	}
	rows := storage.RowView(s.Table)
	if s.Rows != nil {
		rows = s.Rows
	}
	if snap, ok := rows.(*storage.TableSnap); ok {
		v := snap.LiveVersion()
		if v != snap.Version() {
			return &indexScanIter{ctx: ctx, s: s, rows: snap, ids: indexFallbackIDs(snap, s.Index, key)}, nil
		}
		ids := s.Index.Lookup(key)
		if snap.LiveVersion() != v {
			ids = indexFallbackIDs(snap, s.Index, key)
		}
		return &indexScanIter{ctx: ctx, s: s, rows: snap, ids: ids}, nil
	}
	ids := s.Index.Lookup(key)
	return &indexScanIter{ctx: ctx, s: s, rows: rows, ids: ids}, nil
}

// indexFallbackIDs computes an index point lookup by scanning a pinned
// snapshot, mirroring the index's own key-equality semantics (string keys
// for hash indexes, types.Compare for ordered ones).
func indexFallbackIDs(snap *storage.TableSnap, ix *storage.Index, key types.Row) []storage.RowID {
	cols := ix.Columns()
	keyIdx := make([]int, len(key))
	for i := range key {
		keyIdx[i] = i
	}
	var keyStr string
	if !ix.Ordered() {
		keyStr = types.KeyOf(key, keyIdx)
	}
	var ids []storage.RowID
	snap.Scan(func(id storage.RowID, row types.Row) bool {
		if ix.Ordered() {
			probe := make(types.Row, len(cols))
			for i, c := range cols {
				probe[i] = row[c]
			}
			if storage.ComparePrefix(probe, key) != 0 {
				return true
			}
		} else if types.KeyOf(row, cols) != keyStr {
			return true
		}
		ids = append(ids, id)
		return true
	})
	return ids
}

type indexScanIter struct {
	ctx  *Context
	s    *IndexScan
	rows storage.RowView
	ids  []storage.RowID
	i    int
}

func (it *indexScanIter) Next() (types.Row, error) {
	for it.i < len(it.ids) {
		if err := it.ctx.CheckCancel(); err != nil {
			return nil, err
		}
		row, ok := it.rows.Get(it.ids[it.i])
		it.i++
		if !ok {
			continue
		}
		if it.s.Filter != nil {
			ok, err := expr.EvalBool(it.s.Filter, &expr.Env{Row: row, Params: it.ctx.Params})
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		it.ctx.RowsEmitted++
		return row, nil
	}
	return nil, nil
}
func (it *indexScanIter) Close() {}

// VertexScan iterates the vertexes of a graph view as extended tuples
// (attributes + FanOut/FanIn), the paper's VertexScan operator (§5.1.1).
type VertexScan struct {
	GV     *catalog.GraphView
	Alias  string
	Filter expr.Expr

	// At, when set, binds the scan to a pinned version of the view
	// (topology + source snapshots); nil scans the live view.
	At *catalog.GraphViewAt

	schema *types.Schema
}

// NewVertexScan creates a vertex scan over the graph view.
func NewVertexScan(gv *catalog.GraphView, alias string, filter expr.Expr) *VertexScan {
	return &VertexScan{GV: gv, Alias: alias, Filter: filter,
		schema: gv.VertexSchema().WithQualifier(alias)}
}

func (s *VertexScan) at() *catalog.GraphViewAt {
	if s.At != nil {
		return s.At
	}
	return s.GV.Live()
}

// Schema implements Operator.
func (s *VertexScan) Schema() *types.Schema { return s.schema }

// Explain implements Operator.
func (s *VertexScan) Explain() string {
	out := fmt.Sprintf("VertexScan %s", s.GV.Name)
	if s.Filter != nil {
		out += fmt.Sprintf(" filter=%s", s.Filter)
	}
	return out
}

// Children implements Operator.
func (s *VertexScan) Children() []Operator { return nil }

// Open implements Operator.
func (s *VertexScan) Open(ctx *Context) (Iterator, error) {
	at := s.at()
	var verts []*graph.Vertex
	at.G.Vertices(func(v *graph.Vertex) bool {
		verts = append(verts, v)
		return true
	})
	return &vertexScanIter{ctx: ctx, s: s, at: at, verts: verts}, nil
}

type vertexScanIter struct {
	ctx   *Context
	s     *VertexScan
	at    *catalog.GraphViewAt
	verts []*graph.Vertex
	i     int
}

func (it *vertexScanIter) Next() (types.Row, error) {
	for it.i < len(it.verts) {
		if err := it.ctx.CheckCancel(); err != nil {
			return nil, err
		}
		v := it.verts[it.i]
		it.i++
		row, err := it.at.VertexRow(v)
		if err != nil {
			return nil, err
		}
		if it.s.Filter != nil {
			ok, err := expr.EvalBool(it.s.Filter, &expr.Env{Row: row, Params: it.ctx.Params})
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		it.ctx.RowsEmitted++
		return row, nil
	}
	return nil, nil
}
func (it *vertexScanIter) Close() {}

// EdgeScan iterates the edges of a graph view as extended tuples, the
// paper's EdgeScan operator (§5.1.1).
type EdgeScan struct {
	GV     *catalog.GraphView
	Alias  string
	Filter expr.Expr

	// At, when set, binds the scan to a pinned version of the view.
	At *catalog.GraphViewAt

	schema *types.Schema
}

// NewEdgeScan creates an edge scan over the graph view.
func NewEdgeScan(gv *catalog.GraphView, alias string, filter expr.Expr) *EdgeScan {
	return &EdgeScan{GV: gv, Alias: alias, Filter: filter,
		schema: gv.EdgeSchema().WithQualifier(alias)}
}

func (s *EdgeScan) at() *catalog.GraphViewAt {
	if s.At != nil {
		return s.At
	}
	return s.GV.Live()
}

// Schema implements Operator.
func (s *EdgeScan) Schema() *types.Schema { return s.schema }

// Explain implements Operator.
func (s *EdgeScan) Explain() string {
	out := fmt.Sprintf("EdgeScan %s", s.GV.Name)
	if s.Filter != nil {
		out += fmt.Sprintf(" filter=%s", s.Filter)
	}
	return out
}

// Children implements Operator.
func (s *EdgeScan) Children() []Operator { return nil }

// Open implements Operator.
func (s *EdgeScan) Open(ctx *Context) (Iterator, error) {
	at := s.at()
	var edges []*graph.Edge
	at.G.Edges(func(e *graph.Edge) bool {
		edges = append(edges, e)
		return true
	})
	return &edgeScanIter{ctx: ctx, s: s, at: at, edges: edges}, nil
}

type edgeScanIter struct {
	ctx   *Context
	s     *EdgeScan
	at    *catalog.GraphViewAt
	edges []*graph.Edge
	i     int
}

func (it *edgeScanIter) Next() (types.Row, error) {
	for it.i < len(it.edges) {
		if err := it.ctx.CheckCancel(); err != nil {
			return nil, err
		}
		e := it.edges[it.i]
		it.i++
		row, err := it.at.EdgeRow(e)
		if err != nil {
			return nil, err
		}
		if it.s.Filter != nil {
			ok, err := expr.EvalBool(it.s.Filter, &expr.Env{Row: row, Params: it.ctx.Params})
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		it.ctx.RowsEmitted++
		return row, nil
	}
	return nil, nil
}
func (it *edgeScanIter) Close() {}
