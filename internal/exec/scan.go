package exec

import (
	"fmt"
	"strings"

	"grfusion/internal/catalog"
	"grfusion/internal/expr"
	"grfusion/internal/graph"
	"grfusion/internal/storage"
	"grfusion/internal/types"
)

// Singleton produces exactly one empty row. It anchors path scans and
// constant SELECTs that have no relational input.
type Singleton struct{}

// Schema implements Operator.
func (Singleton) Schema() *types.Schema { return types.NewSchema() }

// Open implements Operator.
func (Singleton) Open(*Context) (Iterator, error) { return &singletonIter{}, nil }

// Explain implements Operator.
func (Singleton) Explain() string { return "Singleton" }

// Children implements Operator.
func (Singleton) Children() []Operator { return nil }

type singletonIter struct{ done bool }

func (s *singletonIter) Next() (types.Row, error) {
	if s.done {
		return nil, nil
	}
	s.done = true
	return types.Row{}, nil
}
func (s *singletonIter) Close() {}

// DebugPanicTable, when non-empty, makes Open of a scan over the named
// table panic — the fault-injection hook behind the server's
// panic-isolation tests, mirroring catalog.DebugSkipEdgeDelete. Never set
// outside tests.
var DebugPanicTable string

// DebugStallTable and DebugStall, when set, make Open of a scan over the
// named table call DebugStall (typically blocking on a channel) — the
// deterministic "in-flight statement" hook behind the graceful-shutdown
// tests. Never set outside tests.
var (
	DebugStallTable string
	DebugStall      func()
)

// debugScanHooks applies the test-only fault hooks for a scan over name.
func debugScanHooks(name string) {
	if DebugPanicTable != "" && strings.EqualFold(name, DebugPanicTable) {
		panic(fmt.Sprintf("exec: injected panic opening scan over %s (DebugPanicTable)", name))
	}
	if DebugStall != nil && strings.EqualFold(name, DebugStallTable) {
		DebugStall()
	}
}

// SeqScan scans a table, optionally filtering. The filter is bound against
// the scan's output schema.
type SeqScan struct {
	Table  *storage.Table
	Alias  string
	Filter expr.Expr

	schema *types.Schema
}

// NewSeqScan creates a sequential scan over table under the given range
// variable.
func NewSeqScan(t *storage.Table, alias string, filter expr.Expr) *SeqScan {
	return &SeqScan{Table: t, Alias: alias, Filter: filter,
		schema: t.Schema().WithQualifier(alias)}
}

// Schema implements Operator.
func (s *SeqScan) Schema() *types.Schema { return s.schema }

// Explain implements Operator.
func (s *SeqScan) Explain() string {
	out := fmt.Sprintf("SeqScan %s", s.Table.Name())
	if s.Alias != "" && s.Alias != s.Table.Name() {
		out += " AS " + s.Alias
	}
	if s.Filter != nil {
		out += fmt.Sprintf(" filter=%s", s.Filter)
	}
	return out
}

// Children implements Operator.
func (s *SeqScan) Children() []Operator { return nil }

// Open implements Operator.
func (s *SeqScan) Open(ctx *Context) (Iterator, error) {
	debugScanHooks(s.Table.Name())
	// Materialize the matching row ids up front: tables are not versioned
	// MVCC stores, and the engine serializes statements, so a snapshot of
	// ids is stable for the statement's lifetime.
	var ids []storage.RowID
	s.Table.Scan(func(id storage.RowID, row types.Row) bool {
		ids = append(ids, id)
		return true
	})
	return &seqScanIter{ctx: ctx, s: s, ids: ids}, nil
}

type seqScanIter struct {
	ctx *Context
	s   *SeqScan
	ids []storage.RowID
	i   int
}

func (it *seqScanIter) Next() (types.Row, error) {
	for it.i < len(it.ids) {
		if err := it.ctx.CheckCancel(); err != nil {
			return nil, err
		}
		row, ok := it.s.Table.Get(it.ids[it.i])
		it.i++
		if !ok {
			continue
		}
		if it.s.Filter != nil {
			ok, err := expr.EvalBool(it.s.Filter, &expr.Env{Row: row, Params: it.ctx.Params})
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		it.ctx.RowsEmitted++
		return row, nil
	}
	return nil, nil
}
func (it *seqScanIter) Close() {}

// IndexScan fetches rows whose indexed columns equal the given key
// expressions (evaluated once at Open; they must be constant).
type IndexScan struct {
	Table  *storage.Table
	Alias  string
	Index  *storage.Index
	Keys   []expr.Expr // one per indexed column, constant
	Filter expr.Expr

	schema *types.Schema
}

// NewIndexScan creates an index point-lookup scan.
func NewIndexScan(t *storage.Table, alias string, ix *storage.Index, keys []expr.Expr, filter expr.Expr) *IndexScan {
	return &IndexScan{Table: t, Alias: alias, Index: ix, Keys: keys, Filter: filter,
		schema: t.Schema().WithQualifier(alias)}
}

// Schema implements Operator.
func (s *IndexScan) Schema() *types.Schema { return s.schema }

// Explain implements Operator.
func (s *IndexScan) Explain() string {
	out := fmt.Sprintf("IndexScan %s using %s", s.Table.Name(), s.Index.Name())
	if s.Filter != nil {
		out += fmt.Sprintf(" filter=%s", s.Filter)
	}
	return out
}

// Children implements Operator.
func (s *IndexScan) Children() []Operator { return nil }

// Open implements Operator.
func (s *IndexScan) Open(ctx *Context) (Iterator, error) {
	key := make(types.Row, len(s.Keys))
	for i, e := range s.Keys {
		v, err := expr.Eval(e, &expr.Env{Params: ctx.Params})
		if err != nil {
			return nil, fmt.Errorf("index key: %v", err)
		}
		key[i] = v
	}
	ids := s.Index.Lookup(key)
	return &indexScanIter{ctx: ctx, s: s, ids: ids}, nil
}

type indexScanIter struct {
	ctx *Context
	s   *IndexScan
	ids []storage.RowID
	i   int
}

func (it *indexScanIter) Next() (types.Row, error) {
	for it.i < len(it.ids) {
		if err := it.ctx.CheckCancel(); err != nil {
			return nil, err
		}
		row, ok := it.s.Table.Get(it.ids[it.i])
		it.i++
		if !ok {
			continue
		}
		if it.s.Filter != nil {
			ok, err := expr.EvalBool(it.s.Filter, &expr.Env{Row: row, Params: it.ctx.Params})
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		it.ctx.RowsEmitted++
		return row, nil
	}
	return nil, nil
}
func (it *indexScanIter) Close() {}

// VertexScan iterates the vertexes of a graph view as extended tuples
// (attributes + FanOut/FanIn), the paper's VertexScan operator (§5.1.1).
type VertexScan struct {
	GV     *catalog.GraphView
	Alias  string
	Filter expr.Expr

	schema *types.Schema
}

// NewVertexScan creates a vertex scan over the graph view.
func NewVertexScan(gv *catalog.GraphView, alias string, filter expr.Expr) *VertexScan {
	return &VertexScan{GV: gv, Alias: alias, Filter: filter,
		schema: gv.VertexSchema().WithQualifier(alias)}
}

// Schema implements Operator.
func (s *VertexScan) Schema() *types.Schema { return s.schema }

// Explain implements Operator.
func (s *VertexScan) Explain() string {
	out := fmt.Sprintf("VertexScan %s", s.GV.Name)
	if s.Filter != nil {
		out += fmt.Sprintf(" filter=%s", s.Filter)
	}
	return out
}

// Children implements Operator.
func (s *VertexScan) Children() []Operator { return nil }

// Open implements Operator.
func (s *VertexScan) Open(ctx *Context) (Iterator, error) {
	var verts []*graph.Vertex
	s.GV.G.Vertices(func(v *graph.Vertex) bool {
		verts = append(verts, v)
		return true
	})
	return &vertexScanIter{ctx: ctx, s: s, verts: verts}, nil
}

type vertexScanIter struct {
	ctx   *Context
	s     *VertexScan
	verts []*graph.Vertex
	i     int
}

func (it *vertexScanIter) Next() (types.Row, error) {
	for it.i < len(it.verts) {
		if err := it.ctx.CheckCancel(); err != nil {
			return nil, err
		}
		v := it.verts[it.i]
		it.i++
		row, err := it.s.GV.VertexRow(v)
		if err != nil {
			return nil, err
		}
		if it.s.Filter != nil {
			ok, err := expr.EvalBool(it.s.Filter, &expr.Env{Row: row, Params: it.ctx.Params})
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		it.ctx.RowsEmitted++
		return row, nil
	}
	return nil, nil
}
func (it *vertexScanIter) Close() {}

// EdgeScan iterates the edges of a graph view as extended tuples, the
// paper's EdgeScan operator (§5.1.1).
type EdgeScan struct {
	GV     *catalog.GraphView
	Alias  string
	Filter expr.Expr

	schema *types.Schema
}

// NewEdgeScan creates an edge scan over the graph view.
func NewEdgeScan(gv *catalog.GraphView, alias string, filter expr.Expr) *EdgeScan {
	return &EdgeScan{GV: gv, Alias: alias, Filter: filter,
		schema: gv.EdgeSchema().WithQualifier(alias)}
}

// Schema implements Operator.
func (s *EdgeScan) Schema() *types.Schema { return s.schema }

// Explain implements Operator.
func (s *EdgeScan) Explain() string {
	out := fmt.Sprintf("EdgeScan %s", s.GV.Name)
	if s.Filter != nil {
		out += fmt.Sprintf(" filter=%s", s.Filter)
	}
	return out
}

// Children implements Operator.
func (s *EdgeScan) Children() []Operator { return nil }

// Open implements Operator.
func (s *EdgeScan) Open(ctx *Context) (Iterator, error) {
	var edges []*graph.Edge
	s.GV.G.Edges(func(e *graph.Edge) bool {
		edges = append(edges, e)
		return true
	})
	return &edgeScanIter{ctx: ctx, s: s, edges: edges}, nil
}

type edgeScanIter struct {
	ctx   *Context
	s     *EdgeScan
	edges []*graph.Edge
	i     int
}

func (it *edgeScanIter) Next() (types.Row, error) {
	for it.i < len(it.edges) {
		if err := it.ctx.CheckCancel(); err != nil {
			return nil, err
		}
		e := it.edges[it.i]
		it.i++
		row, err := it.s.GV.EdgeRow(e)
		if err != nil {
			return nil, err
		}
		if it.s.Filter != nil {
			ok, err := expr.EvalBool(it.s.Filter, &expr.Env{Row: row, Params: it.ctx.Params})
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		it.ctx.RowsEmitted++
		return row, nil
	}
	return nil, nil
}
func (it *edgeScanIter) Close() {}
