package exec

import "grfusion/internal/types"

// Materialize drains its child into an in-memory temp table before
// emitting anything, charging the intermediate-result budget for every
// buffered row.
//
// VoltDB executes each plan fragment into a temporary table rather than
// pipelining rows between operators; wrapping every join output in
// Materialize reproduces that execution model. The paper's SQLGraph
// baseline inherits it — its multi-join traversal queries blow past the
// temp-table budget on skewed graphs (the Twitter experiment of §7.2) —
// while GRFusion's lazy PathScan never materializes intermediate paths.
type Materialize struct {
	Child Operator
}

// NewMaterialize wraps child with a temp-table barrier.
func NewMaterialize(child Operator) *Materialize { return &Materialize{Child: child} }

// Schema implements Operator.
func (m *Materialize) Schema() *types.Schema { return m.Child.Schema() }

// Explain implements Operator.
func (m *Materialize) Explain() string { return "Materialize (temp table)" }

// Children implements Operator.
func (m *Materialize) Children() []Operator { return []Operator{m.Child} }

// Open implements Operator.
func (m *Materialize) Open(ctx *Context) (Iterator, error) {
	child, err := m.Child.Open(ctx)
	if err != nil {
		return nil, err
	}
	defer child.Close()
	var rows []types.Row
	var charged int64
	for {
		if err := ctx.CheckCancel(); err != nil {
			ctx.Release(charged)
			return nil, err
		}
		row, err := child.Next()
		if err != nil {
			ctx.Release(charged)
			return nil, err
		}
		if row == nil {
			break
		}
		b := rowBytes(row)
		if err := ctx.Grow(b); err != nil {
			ctx.Release(charged)
			return nil, err
		}
		charged += b
		rows = append(rows, row)
	}
	return &sliceIter{ctx: ctx, rows: rows, charged: charged}, nil
}
