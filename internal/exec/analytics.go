package exec

import (
	"fmt"
	"strings"
	"sync/atomic"

	"grfusion/internal/catalog"
	"grfusion/internal/expr"
	"grfusion/internal/graph"
	"grfusion/internal/types"
)

// This file implements AnalyticsScan, the physical operator behind the
// whole-graph analytics table-valued functions over graph views:
//
//	SELECT * FROM GV.PAGERANK(0.85, 20) PR
//	SELECT * FROM GV.CONNECTED_COMPONENTS() CC
//	SELECT * FROM GV.LABEL_PROPAGATION(10) LP
//	SELECT * FROM GV.DEGREE_CENTRALITY() DC
//
// The operator is a leaf: it runs the kernel at Open (over the CSR
// snapshot or the pointer reference, by the planner's layout choice) and
// streams the result as an ordinary relation — one row per vertex in
// ascending identifier order, an ID column plus the function's metric
// columns — so results join and filter against table attributes.

// AnalyticsFunc identifies one analytics table-valued function.
type AnalyticsFunc uint8

// The analytics functions.
const (
	AnalyticsPageRank AnalyticsFunc = iota
	AnalyticsComponents
	AnalyticsLabelProp
	AnalyticsDegree
)

func (f AnalyticsFunc) String() string {
	switch f {
	case AnalyticsPageRank:
		return "PAGERANK"
	case AnalyticsComponents:
		return "CONNECTED_COMPONENTS"
	case AnalyticsLabelProp:
		return "LABEL_PROPAGATION"
	case AnalyticsDegree:
		return "DEGREE_CENTRALITY"
	default:
		return fmt.Sprintf("AnalyticsFunc(%d)", uint8(f))
	}
}

// AnalyticsFuncByName resolves a function name (case-insensitive).
func AnalyticsFuncByName(name string) (AnalyticsFunc, bool) {
	switch strings.ToUpper(name) {
	case "PAGERANK":
		return AnalyticsPageRank, true
	case "CONNECTED_COMPONENTS":
		return AnalyticsComponents, true
	case "LABEL_PROPAGATION":
		return AnalyticsLabelProp, true
	case "DEGREE_CENTRALITY":
		return AnalyticsDegree, true
	default:
		return 0, false
	}
}

// Arity returns the smallest and largest argument count the function
// accepts: PAGERANK([damping [, iterations]]), LABEL_PROPAGATION([maxIters]),
// the others take none.
func (f AnalyticsFunc) Arity() (lo, hi int) {
	switch f {
	case AnalyticsPageRank:
		return 0, 2
	case AnalyticsLabelProp:
		return 0, 1
	default:
		return 0, 0
	}
}

// Default kernel parameters for arguments the statement omits.
const (
	DefaultPageRankDamping = 0.85
	DefaultPageRankIters   = 20
	DefaultLabelPropIters  = 20
	// pageRankEps is the fixed early-stop threshold of the SQL surface
	// (the L1 delta between iterations); the Go kernel API exposes it,
	// the SQL one pins it for reproducible iteration counts.
	pageRankEps = 1e-9
)

// AnalyticsSchema returns the unqualified output schema of a function. The
// first column is always ID (the vertex identifier), so results join
// naturally against the view's VERTEXES member and its source table.
func AnalyticsSchema(f AnalyticsFunc) *types.Schema {
	id := types.Column{Name: catalog.AttrID, Type: types.KindInt}
	switch f {
	case AnalyticsPageRank:
		return types.NewSchema(id, types.Column{Name: "rank", Type: types.KindFloat})
	case AnalyticsComponents:
		return types.NewSchema(id, types.Column{Name: "component", Type: types.KindInt})
	case AnalyticsLabelProp:
		return types.NewSchema(id, types.Column{Name: "label", Type: types.KindInt})
	default:
		return types.NewSchema(id,
			types.Column{Name: "out_degree", Type: types.KindInt},
			types.Column{Name: "in_degree", Type: types.KindInt})
	}
}

// AnalyticsScan runs one analytics function over a graph view and streams
// the result relation.
type AnalyticsScan struct {
	GV     *catalog.GraphView
	Alias  string
	Fn     AnalyticsFunc
	Args   []expr.Expr // constant arguments (literals or parameters)
	Layout Layout
	Filter expr.Expr

	// At, when set, runs the kernel over a pinned version of the view's
	// topology; nil runs over the live view.
	At *catalog.GraphViewAt

	schema *types.Schema

	// Actuals, surfaced by EXPLAIN ANALYZE and the metrics registry:
	// kernel runs, iterations (BFS levels for components), and the
	// direction split of the component BFS.
	runs, iters, topDown, bottomUp atomic.Int64
}

// NewAnalyticsScan creates the operator.
func NewAnalyticsScan(gv *catalog.GraphView, alias string, fn AnalyticsFunc,
	args []expr.Expr, layout Layout, filter expr.Expr) *AnalyticsScan {
	return &AnalyticsScan{GV: gv, Alias: alias, Fn: fn, Args: args,
		Layout: layout, Filter: filter,
		schema: AnalyticsSchema(fn).WithQualifier(alias)}
}

// Schema implements Operator.
func (s *AnalyticsScan) Schema() *types.Schema { return s.schema }

// Children implements Operator.
func (s *AnalyticsScan) Children() []Operator { return nil }

// Explain implements Operator.
func (s *AnalyticsScan) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "AnalyticsScan %s.%s(", s.GV.Name, s.Fn)
	for i, a := range s.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s", a)
	}
	sb.WriteString(")")
	if s.Filter != nil {
		fmt.Fprintf(&sb, " filter=%s", s.Filter)
	}
	fmt.Fprintf(&sb, " layout=%s", s.Layout)
	return sb.String()
}

// Actuals reports the accumulated per-run counters for EXPLAIN ANALYZE:
// kernel runs, iterations, and the components BFS direction split.
func (s *AnalyticsScan) Actuals() (runs, iters, topDown, bottomUp int64) {
	return s.runs.Load(), s.iters.Load(), s.topDown.Load(), s.bottomUp.Load()
}

// argFloat evaluates a constant argument to a float.
func argFloat(ctx *Context, e expr.Expr, what string) (float64, error) {
	v, err := expr.Eval(e, &expr.Env{Params: ctx.Params})
	if err != nil {
		return 0, fmt.Errorf("%s: %v", what, err)
	}
	switch v.Kind {
	case types.KindInt:
		return float64(v.I), nil
	case types.KindFloat:
		return v.F, nil
	default:
		return 0, fmt.Errorf("%s must be numeric, got %s", what, v)
	}
}

// argInt evaluates a constant argument to an int.
func argInt(ctx *Context, e expr.Expr, what string) (int, error) {
	v, err := expr.Eval(e, &expr.Env{Params: ctx.Params})
	if err != nil {
		return 0, fmt.Errorf("%s: %v", what, err)
	}
	if v.Kind != types.KindInt {
		return 0, fmt.Errorf("%s must be an integer, got %s", what, v)
	}
	return int(v.I), nil
}

// Open implements Operator: it runs the kernel to completion (respecting
// the statement's cancellation signal) and returns an iterator over the
// result relation.
func (s *AnalyticsScan) Open(ctx *Context) (Iterator, error) {
	damping, prIters, lpIters := DefaultPageRankDamping, DefaultPageRankIters, DefaultLabelPropIters
	switch s.Fn {
	case AnalyticsPageRank:
		if len(s.Args) >= 1 {
			d, err := argFloat(ctx, s.Args[0], "PAGERANK damping")
			if err != nil {
				return nil, err
			}
			if d < 0 || d >= 1 {
				return nil, fmt.Errorf("PAGERANK damping must be in [0, 1), got %v", d)
			}
			damping = d
		}
		if len(s.Args) >= 2 {
			n, err := argInt(ctx, s.Args[1], "PAGERANK iterations")
			if err != nil {
				return nil, err
			}
			if n < 1 || n > 100000 {
				return nil, fmt.Errorf("PAGERANK iterations must be in [1, 100000], got %d", n)
			}
			prIters = n
		}
	case AnalyticsLabelProp:
		if len(s.Args) >= 1 {
			n, err := argInt(ctx, s.Args[0], "LABEL_PROPAGATION maxIters")
			if err != nil {
				return nil, err
			}
			if n < 1 || n > 100000 {
				return nil, fmt.Errorf("LABEL_PROPAGATION maxIters must be in [1, 100000], got %d", n)
			}
			lpIters = n
		}
	}
	workers := ctx.Workers
	if workers < 1 {
		workers = 1
	}

	at := s.At
	if at == nil {
		at = s.GV.Live()
	}
	it := &analyticsIter{ctx: ctx, s: s}
	s.runs.Add(1)
	if s.Layout == LayoutCSR {
		// Fetch (or lazily build) the CSR snapshot of the bound topology
		// version at execution time — same pinning discipline as PathScan.
		c := at.CSR()
		it.csr = c
		it.n = c.NumVertices()
		a := c.NewAnalytics()
		it.a, it.hasScratch = a, true
		var err error
		switch s.Fn {
		case AnalyticsPageRank:
			var iters int
			it.ranks, iters, err = a.PageRank(ctx.Done(), workers, damping, prIters, pageRankEps)
			s.iters.Add(int64(iters))
			atomic.AddInt64(&ctx.EdgesTraversed, int64(iters)*int64(c.NumEdges()))
		case AnalyticsComponents:
			var stats graph.ComponentsStats
			it.ints, stats, err = a.Components(ctx.Done(), workers)
			s.iters.Add(int64(stats.Levels))
			s.topDown.Add(int64(stats.TopDown))
			s.bottomUp.Add(int64(stats.BottomUp))
			atomic.AddInt64(&ctx.EdgesTraversed, 2*int64(c.NumEdges()))
		case AnalyticsLabelProp:
			var iters int
			it.ints, iters, err = a.LabelProp(ctx.Done(), workers, lpIters)
			s.iters.Add(int64(iters))
			atomic.AddInt64(&ctx.EdgesTraversed, 2*int64(iters)*int64(c.NumEdges()))
		case AnalyticsDegree:
			it.ints, it.ints2 = a.Degrees()
		}
		if err != nil {
			it.Close()
			return nil, mapStopped(ctx, err)
		}
		return it, nil
	}

	// Pointer layout: the single-threaded reference over the bound
	// topology — always correct, no snapshot build, the right call for
	// small graphs and the oracle's layout-invariance baseline.
	g := at.G
	g.Vertices(func(v *graph.Vertex) bool {
		it.ids = append(it.ids, v.ID)
		return true
	})
	it.n = len(it.ids)
	var err error
	switch s.Fn {
	case AnalyticsPageRank:
		var iters int
		it.fmap, iters, err = graph.RefPageRank(ctx.Done(), g, damping, prIters, pageRankEps)
		s.iters.Add(int64(iters))
		atomic.AddInt64(&ctx.EdgesTraversed, int64(iters)*int64(g.NumEdges()))
	case AnalyticsComponents:
		var levels int
		it.imap, levels, err = graph.RefComponents(ctx.Done(), g)
		s.iters.Add(int64(levels))
		s.topDown.Add(int64(levels))
		atomic.AddInt64(&ctx.EdgesTraversed, 2*int64(g.NumEdges()))
	case AnalyticsLabelProp:
		var iters int
		it.imap, iters, err = graph.RefLabelProp(ctx.Done(), g, lpIters)
		s.iters.Add(int64(iters))
		atomic.AddInt64(&ctx.EdgesTraversed, 2*int64(iters)*int64(g.NumEdges()))
	case AnalyticsDegree:
		it.imap, it.imap2 = graph.RefDegrees(g)
	}
	if err != nil {
		return nil, mapStopped(ctx, err)
	}
	return it, nil
}

// mapStopped converts a kernel's ErrStopped into the context's typed
// cancellation cause (timeout or cancel), the pathscan idiom.
func mapStopped(ctx *Context, err error) error {
	if err == graph.ErrStopped {
		if cerr := ctx.CheckCancel(); cerr != nil {
			return cerr
		}
	}
	return err
}

// analyticsIter streams the result relation in ascending vertex-ID order.
type analyticsIter struct {
	ctx *Context
	s   *AnalyticsScan
	n   int
	i   int

	// CSR layout: dense kernel outputs plus the pooled scratch to release.
	csr        *graph.CSR
	a          graph.Analytics
	hasScratch bool
	ranks      []float64
	ints       []int64
	ints2      []int64

	// Pointer layout: reference outputs keyed by vertex identifier.
	ids   []int64
	fmap  map[int64]float64
	imap  map[int64]int64
	imap2 map[int64]int64
}

func (it *analyticsIter) Next() (types.Row, error) {
	for it.i < it.n {
		if err := it.ctx.CheckCancel(); err != nil {
			return nil, err
		}
		i := it.i
		it.i++
		var row types.Row
		if it.csr != nil {
			id := it.csr.VertexID(i)
			switch it.s.Fn {
			case AnalyticsPageRank:
				row = types.Row{types.NewInt(id), types.NewFloat(it.ranks[i])}
			case AnalyticsDegree:
				row = types.Row{types.NewInt(id), types.NewInt(it.ints[i]), types.NewInt(it.ints2[i])}
			default:
				row = types.Row{types.NewInt(id), types.NewInt(it.ints[i])}
			}
		} else {
			id := it.ids[i]
			switch it.s.Fn {
			case AnalyticsPageRank:
				row = types.Row{types.NewInt(id), types.NewFloat(it.fmap[id])}
			case AnalyticsDegree:
				row = types.Row{types.NewInt(id), types.NewInt(it.imap[id]), types.NewInt(it.imap2[id])}
			default:
				row = types.Row{types.NewInt(id), types.NewInt(it.imap[id])}
			}
		}
		if it.s.Filter != nil {
			ok, err := expr.EvalBool(it.s.Filter, &expr.Env{Row: row, Params: it.ctx.Params})
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		it.ctx.RowsEmitted++
		return row, nil
	}
	return nil, nil
}

func (it *analyticsIter) Close() {
	if it.hasScratch {
		it.hasScratch = false
		it.ranks, it.ints, it.ints2 = nil, nil, nil
		it.a.Release()
	}
}
