// Package exec implements the physical operators of GRFusion's query
// engine. Operators follow the Volcano iterator model (§5.1): Open yields a
// pull-based Iterator, and graph operators (VertexScan, EdgeScan, and the
// PathScan family) sit at the leaves of the same pipelines as the
// relational operators, emitting extended tuples that relational operators
// consume without knowing their graph origin (§5.2).
package exec

import (
	"fmt"

	"grfusion/internal/storage"
	"grfusion/internal/types"
)

// Context carries per-query execution state: the intermediate-result
// memory budget (VoltDB's temporary-memory limit, which the paper's
// Twitter experiment trips over) and counters exposed to benchmarks.
type Context struct {
	// MemLimit bounds the bytes of materialized intermediate state (hash
	// tables, sort buffers, nested-loop materializations). Zero means
	// unlimited.
	MemLimit int64

	// Params holds the positional arguments of the prepared statement
	// being executed (empty for ad-hoc statements).
	Params types.Row

	// Workers bounds the worker pool a parallelizable PathScan may fan a
	// multi-source traversal across. <= 1 keeps traversals sequential.
	Workers int

	used int64

	// Cancellation signal (see cancel.go). done is nil until Bind attaches
	// a context; both fields are immutable afterwards, so worker goroutines
	// may poll CheckCancel without synchronization.
	done        <-chan struct{}
	cancelCause func() error

	// Counters. EdgesTraversed is updated with atomic adds (traversal
	// workers flush their local counts into it); read it only after the
	// query completes, or via atomic loads.
	RowsEmitted    int64
	EdgesTraversed int64
	PathsEmitted   int64
}

// NewContext creates an execution context with the given memory budget.
func NewContext(memLimit int64) *Context { return &Context{MemLimit: memLimit} }

// Grow charges bytes of intermediate memory, failing when the budget is
// exhausted (the executor's analogue of VoltDB's temp-table limit).
func (c *Context) Grow(bytes int64) error {
	c.used += bytes
	if c.MemLimit > 0 && c.used > c.MemLimit {
		return fmt.Errorf("%w (%d bytes used, limit %d)", ErrMemLimit, c.used, c.MemLimit)
	}
	return nil
}

// Release returns bytes to the budget when an operator frees its state.
func (c *Context) Release(bytes int64) {
	c.used -= bytes
	if c.used < 0 {
		c.used = 0
	}
}

// MemUsed reports the current charged intermediate memory.
func (c *Context) MemUsed() int64 { return c.used }

// Iterator produces rows one at a time; Next returns (nil, nil) at end of
// stream.
type Iterator interface {
	Next() (types.Row, error)
	Close()
}

// Operator is a physical plan node.
type Operator interface {
	// Schema describes the rows the operator produces.
	Schema() *types.Schema
	// Open starts execution.
	Open(ctx *Context) (Iterator, error)
	// Explain renders one line describing the operator (children are
	// rendered by Explain on the tree).
	Explain() string
	// Children returns the operator's inputs, for plan rendering.
	Children() []Operator
}

// Explain renders an operator tree as an indented plan, mirroring the QEP
// figures of the paper.
func Explain(op Operator) string {
	var out []byte
	var walk func(o Operator, depth int)
	walk = func(o Operator, depth int) {
		for i := 0; i < depth; i++ {
			out = append(out, ' ', ' ')
		}
		out = append(out, o.Explain()...)
		out = append(out, '\n')
		for _, c := range o.Children() {
			walk(c, depth+1)
		}
	}
	walk(op, 0)
	return string(out)
}

// Collect drains an operator into a materialized result, for tests and the
// engine's statement API.
func Collect(ctx *Context, op Operator) ([]types.Row, error) {
	it, err := op.Open(ctx)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []types.Row
	for {
		if err := ctx.CheckCancel(); err != nil {
			return nil, err
		}
		row, err := it.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return out, nil
		}
		out = append(out, row)
	}
}

// rowBytes estimates a row's resident size for memory accounting.
func rowBytes(r types.Row) int64 { return storage.RowApproxBytes(r) }

// closedIter is an exhausted iterator.
type closedIter struct{}

func (closedIter) Next() (types.Row, error) { return nil, nil }
func (closedIter) Close()                   {}
