package exec

import (
	"fmt"

	"grfusion/internal/expr"
	"grfusion/internal/storage"
	"grfusion/internal/types"
)

// IndexRangeScan fetches rows whose leading indexed column lies within
// [Lo, Hi] using an ordered index. Bounds are evaluated once at Open (they
// must be execution-time constants: literals or statement parameters);
// a nil bound is open-ended.
type IndexRangeScan struct {
	Table  *storage.Table
	Alias  string
	Index  *storage.Index
	Lo, Hi expr.Expr
	LoInc  bool
	HiInc  bool
	Filter expr.Expr

	// Rows, when set, pins the scan to a table snapshot; see SeqScan.Rows.
	Rows storage.RowView

	schema *types.Schema
}

// NewIndexRangeScan creates a range scan over an ordered index.
func NewIndexRangeScan(t *storage.Table, alias string, ix *storage.Index,
	lo, hi expr.Expr, loInc, hiInc bool, filter expr.Expr) *IndexRangeScan {
	return &IndexRangeScan{Table: t, Alias: alias, Index: ix,
		Lo: lo, Hi: hi, LoInc: loInc, HiInc: hiInc, Filter: filter,
		schema: t.Schema().WithQualifier(alias)}
}

// Schema implements Operator.
func (s *IndexRangeScan) Schema() *types.Schema { return s.schema }

// Explain implements Operator.
func (s *IndexRangeScan) Explain() string {
	out := fmt.Sprintf("IndexRangeScan %s using %s", s.Table.Name(), s.Index.Name())
	if s.Lo != nil {
		op := ">"
		if s.LoInc {
			op = ">="
		}
		out += fmt.Sprintf(" %s %s", op, s.Lo)
	}
	if s.Hi != nil {
		op := "<"
		if s.HiInc {
			op = "<="
		}
		out += fmt.Sprintf(" %s %s", op, s.Hi)
	}
	if s.Filter != nil {
		out += fmt.Sprintf(" filter=%s", s.Filter)
	}
	return out
}

// Children implements Operator.
func (s *IndexRangeScan) Children() []Operator { return nil }

// Open implements Operator.
func (s *IndexRangeScan) Open(ctx *Context) (Iterator, error) {
	env := &expr.Env{Params: ctx.Params}
	bound := func(e expr.Expr, inc bool) (storage.Bound, error) {
		if e == nil {
			return storage.Bound{}, nil
		}
		v, err := expr.Eval(e, env)
		if err != nil {
			return storage.Bound{}, fmt.Errorf("range bound: %v", err)
		}
		return storage.Bound{Key: types.Row{v}, Inclusive: inc}, nil
	}
	lo, err := bound(s.Lo, s.LoInc)
	if err != nil {
		return nil, err
	}
	hi, err := bound(s.Hi, s.HiInc)
	if err != nil {
		return nil, err
	}
	rows := storage.RowView(s.Table)
	if s.Rows != nil {
		rows = s.Rows
	}
	// Materialize matching ids. Against a pinned snapshot the live index may
	// run ahead of the pinned version, so verify the table version around the
	// probe and fall back to a filtered snapshot scan when it moved (same
	// protocol as IndexScan.Open).
	if snap, ok := rows.(*storage.TableSnap); ok {
		v := snap.LiveVersion()
		if v != snap.Version() {
			return &rangeScanIter{ctx: ctx, s: s, rows: snap, ids: rangeFallbackIDs(snap, s.Index, lo, hi)}, nil
		}
		ids := collectRange(s.Index, lo, hi)
		if snap.LiveVersion() != v {
			ids = rangeFallbackIDs(snap, s.Index, lo, hi)
		}
		return &rangeScanIter{ctx: ctx, s: s, rows: snap, ids: ids}, nil
	}
	return &rangeScanIter{ctx: ctx, s: s, rows: rows, ids: collectRange(s.Index, lo, hi)}, nil
}

func collectRange(ix *storage.Index, lo, hi storage.Bound) []storage.RowID {
	var ids []storage.RowID
	ix.Range(lo, hi, func(id storage.RowID) bool {
		ids = append(ids, id)
		return true
	})
	return ids
}

// rangeFallbackIDs computes an ordered-index range probe by scanning a
// pinned snapshot, mirroring Index.Range bound semantics on the leading
// index columns. Emission is in RowID order rather than key order; range
// scans make no ordering promise to consumers.
func rangeFallbackIDs(snap *storage.TableSnap, ix *storage.Index, lo, hi storage.Bound) []storage.RowID {
	cols := ix.Columns()
	var ids []storage.RowID
	snap.Scan(func(id storage.RowID, row types.Row) bool {
		probe := make(types.Row, len(cols))
		for i, c := range cols {
			probe[i] = row[c]
		}
		if lo.Key != nil {
			if c := storage.ComparePrefix(probe, lo.Key); c < 0 || (c == 0 && !lo.Inclusive) {
				return true
			}
		}
		if hi.Key != nil {
			if c := storage.ComparePrefix(probe, hi.Key); c > 0 || (c == 0 && !hi.Inclusive) {
				return true
			}
		}
		ids = append(ids, id)
		return true
	})
	return ids
}

type rangeScanIter struct {
	ctx  *Context
	s    *IndexRangeScan
	rows storage.RowView
	ids  []storage.RowID
	i    int
}

func (it *rangeScanIter) Next() (types.Row, error) {
	for it.i < len(it.ids) {
		if err := it.ctx.CheckCancel(); err != nil {
			return nil, err
		}
		row, ok := it.rows.Get(it.ids[it.i])
		it.i++
		if !ok {
			continue
		}
		if it.s.Filter != nil {
			ok, err := expr.EvalBool(it.s.Filter, &expr.Env{Row: row, Params: it.ctx.Params})
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		it.ctx.RowsEmitted++
		return row, nil
	}
	return nil, nil
}
func (it *rangeScanIter) Close() {}
