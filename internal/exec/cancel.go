package exec

// This file gives every query a managed lifecycle. The paper's host system
// (VoltDB) bounds queries with per-statement timeouts next to the
// temp-memory limit its §7.2 Twitter experiment trips; our reproduction
// mirrors both. A Context carries a cancellation signal (a deadline, a
// client disconnect, a server shutdown) that every operator and traversal
// kernel polls cooperatively, so one bad PATHS query on a cyclic graph
// aborts promptly with a typed error instead of running forever.

import (
	"context"
	"errors"
)

// Typed lifecycle errors. They are distinct from each other and from
// ordinary evaluation errors so callers (the server, the shell, retrying
// clients) can react per cause with errors.Is.
var (
	// ErrCanceled reports a query aborted by explicit cancellation — a
	// client disconnect or a server shutdown.
	ErrCanceled = errors.New("query canceled")
	// ErrTimeout reports a query that exceeded its deadline (SET
	// QUERY_TIMEOUT, server config, or a client-supplied timeout_ms).
	ErrTimeout = errors.New("query timeout exceeded")
	// ErrMemLimit reports the intermediate-result memory limit, the
	// executor's analogue of VoltDB's temp-table limit.
	ErrMemLimit = errors.New("intermediate-result memory limit exceeded")
	// ErrDegraded reports a mutating statement rejected because the
	// engine is in degraded read-only mode: its durability path (WAL or
	// disk) is failing, reads keep serving, and a background probe is
	// working to heal it. Unlike admission shedding this is NOT
	// retryable — retrying hammers a sick disk; callers should back off
	// until health reports the engine read-write again.
	ErrDegraded = errors.New("engine degraded to read-only: durability unavailable")
)

// Bind attaches a context's cancellation signal to the execution context.
// Operators observe it through CheckCancel; traversal kernels through
// Done. Binding a context without a Done channel is a no-op.
func (c *Context) Bind(ctx context.Context) {
	if ctx == nil || ctx.Done() == nil {
		return
	}
	c.done = ctx.Done()
	c.cancelCause = func() error {
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return ErrTimeout
		}
		return ErrCanceled
	}
}

// Done exposes the cancellation channel (nil when no signal is bound) for
// kernels below the executor, e.g. graph.Spec.Done.
func (c *Context) Done() <-chan struct{} { return c.done }

// CheckCancel polls the cancellation signal, returning ErrTimeout or
// ErrCanceled once it has fired. It is safe to call from traversal worker
// goroutines: it only reads state that is immutable after Bind. The
// fast path (no signal bound) is a nil check.
func (c *Context) CheckCancel() error {
	if c.done == nil {
		return nil
	}
	select {
	case <-c.done:
		return c.cancelCause()
	default:
		return nil
	}
}
