package exec

import (
	"strings"

	"grfusion/internal/expr"
	"grfusion/internal/types"
)

// AggSpec describes one aggregate computed by HashAggregate.
type AggSpec struct {
	// Name is the aggregate function (COUNT/SUM/AVG/MIN/MAX, upper-cased).
	Name string
	// Arg is the input expression bound to the child schema; nil means
	// COUNT(*) semantics (count rows).
	Arg expr.Expr
	// Distinct folds each distinct value once.
	Distinct bool
}

// HashAggregate groups its input by the GroupBy expressions and computes
// the aggregates per group. Output rows are the group values followed by
// the aggregate results, in first-seen group order. With no GroupBy
// expressions a single global group is produced even for empty input.
type HashAggregate struct {
	Child   Operator
	GroupBy []expr.Expr
	Aggs    []AggSpec
	Out     *types.Schema
}

// NewHashAggregate creates a grouping operator with the given output schema
// (len(GroupBy)+len(Aggs) columns).
func NewHashAggregate(child Operator, groupBy []expr.Expr, aggs []AggSpec, out *types.Schema) *HashAggregate {
	return &HashAggregate{Child: child, GroupBy: groupBy, Aggs: aggs, Out: out}
}

// Schema implements Operator.
func (a *HashAggregate) Schema() *types.Schema { return a.Out }

// Explain implements Operator.
func (a *HashAggregate) Explain() string {
	var parts []string
	for _, g := range a.GroupBy {
		parts = append(parts, g.String())
	}
	for _, s := range a.Aggs {
		if s.Arg == nil {
			parts = append(parts, s.Name+"(*)")
		} else {
			parts = append(parts, s.Name+"("+s.Arg.String()+")")
		}
	}
	return "HashAggregate " + strings.Join(parts, ", ")
}

// Children implements Operator.
func (a *HashAggregate) Children() []Operator { return []Operator{a.Child} }

type aggGroup struct {
	groupVals types.Row
	states    []*expr.AggState
}

// Open implements Operator.
func (a *HashAggregate) Open(ctx *Context) (Iterator, error) {
	child, err := a.Child.Open(ctx)
	if err != nil {
		return nil, err
	}
	defer child.Close()

	groups := make(map[string]*aggGroup)
	var order []string
	var charged int64
	fail := func(err error) (Iterator, error) {
		ctx.Release(charged)
		return nil, err
	}
	newGroup := func(vals types.Row) *aggGroup {
		g := &aggGroup{groupVals: vals, states: make([]*expr.AggState, len(a.Aggs))}
		for i, s := range a.Aggs {
			if s.Distinct {
				g.states[i] = expr.NewDistinctAggState(s.Name)
			} else {
				g.states[i] = expr.NewAggState(s.Name)
			}
		}
		return g
	}
	for {
		if err := ctx.CheckCancel(); err != nil {
			return fail(err)
		}
		row, err := child.Next()
		if err != nil {
			return fail(err)
		}
		if row == nil {
			break
		}
		env := &expr.Env{Row: row, Params: ctx.Params}
		vals := make(types.Row, len(a.GroupBy))
		var sb strings.Builder
		for i, ge := range a.GroupBy {
			v, err := expr.Eval(ge, env)
			if err != nil {
				return fail(err)
			}
			vals[i] = v
			v.AppendKey(&sb)
			sb.WriteByte(0x1f)
		}
		key := sb.String()
		g, ok := groups[key]
		if !ok {
			g = newGroup(vals)
			groups[key] = g
			order = append(order, key)
			b := rowBytes(vals) + int64(len(key)) + 64
			if err := ctx.Grow(b); err != nil {
				return fail(err)
			}
			charged += b
		}
		for i, s := range a.Aggs {
			var v types.Value
			if s.Arg == nil {
				v = types.NewInt(1) // COUNT(*): any non-null marker
			} else {
				v, err = expr.Eval(s.Arg, env)
				if err != nil {
					return fail(err)
				}
			}
			if err := g.states[i].Add(v); err != nil {
				return fail(err)
			}
		}
	}
	if len(a.GroupBy) == 0 && len(order) == 0 {
		groups[""] = newGroup(types.Row{})
		order = append(order, "")
	}
	out := make([]types.Row, 0, len(order))
	for _, key := range order {
		g := groups[key]
		row := make(types.Row, 0, len(g.groupVals)+len(g.states))
		row = append(row, g.groupVals...)
		for _, st := range g.states {
			row = append(row, st.Result())
		}
		out = append(out, row)
	}
	return &sliceIter{ctx: ctx, rows: out, charged: charged}, nil
}
