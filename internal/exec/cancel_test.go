package exec

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"grfusion/internal/catalog"
	"grfusion/internal/graph"
	"grfusion/internal/storage"
	"grfusion/internal/types"
)

// denseCyclicFixture builds a complete digraph on n vertices: all-paths
// enumeration over it is factorial, so any uncancelled traversal would run
// effectively forever. This is the workload the cancellation machinery
// must cut short.
func denseCyclicFixture(t *testing.T, n int) *catalog.GraphView {
	t.Helper()
	vt, _ := storage.NewTable("v", types.NewSchema(
		types.Column{Qualifier: "v", Name: "vid", Type: types.KindInt},
	), []int{0})
	et, _ := storage.NewTable("e", types.NewSchema(
		types.Column{Qualifier: "e", Name: "eid", Type: types.KindInt},
		types.Column{Qualifier: "e", Name: "src", Type: types.KindInt},
		types.Column{Qualifier: "e", Name: "dst", Type: types.KindInt},
	), []int{0})
	for i := int64(1); i <= int64(n); i++ {
		vt.Insert(types.Row{types.NewInt(i)})
	}
	eid := int64(0)
	for a := int64(1); a <= int64(n); a++ {
		for b := int64(1); b <= int64(n); b++ {
			if a == b {
				continue
			}
			eid++
			et.Insert(types.Row{types.NewInt(eid), types.NewInt(a), types.NewInt(b)})
		}
	}
	gv, err := catalog.NewGraphView("K", true, vt, et,
		[]catalog.AttrMap{{Name: "ID", Source: "vid"}},
		[]catalog.AttrMap{{Name: "ID", Source: "eid"}, {Name: "FROM", Source: "src"},
			{Name: "TO", Source: "dst"}})
	if err != nil {
		t.Fatal(err)
	}
	return gv
}

// allPathsSpec enumerates every simple path of the graph — an unbounded
// amount of work on a dense cyclic fixture.
func allPathsSpec(gv *catalog.GraphView, parallel bool) PathScanSpec {
	return PathScanSpec{
		GV: gv, Alias: "P", Phys: PhysDFS, Policy: graph.VisitPerPath,
		MinLen: 1, KPaths: 1, Parallel: parallel,
	}
}

// runCanceled drives the all-paths scan under ctx and expects the typed
// error want; it returns the executor context for counter inspection.
func runCanceled(t *testing.T, stdctx context.Context, workers int, want error) *Context {
	t.Helper()
	gv := denseCyclicFixture(t, 10)
	ec := NewContext(0)
	ec.Workers = workers
	ec.Bind(stdctx)
	op := NewPathProbeJoin(Singleton{}, allPathsSpec(gv, workers > 1), nil)
	start := time.Now()
	_, err := Collect(ec, op)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v; traversal effectively uncancelled", elapsed)
	}
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
	return ec
}

// assertCountersQuiesced verifies no traversal work continues after the
// statement returned: the edge counter must not grow once Collect is done
// (all kernels and workers have exited, not been left running detached).
func assertCountersQuiesced(t *testing.T, ec *Context) {
	t.Helper()
	before := atomic.LoadInt64(&ec.EdgesTraversed)
	time.Sleep(50 * time.Millisecond)
	after := atomic.LoadInt64(&ec.EdgesTraversed)
	if after != before {
		t.Fatalf("EdgesTraversed still growing after cancellation: %d -> %d", before, after)
	}
	if before == 0 {
		t.Fatal("traversal did no work before the deadline; fixture too small to prove cancellation")
	}
}

func TestDeadlineStopsSequentialTraversal(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	ec := runCanceled(t, ctx, 1, ErrTimeout)
	assertCountersQuiesced(t, ec)
}

func TestDeadlineStopsParallelTraversal(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	ec := runCanceled(t, ctx, 4, ErrTimeout)
	assertCountersQuiesced(t, ec)
}

func TestExplicitCancelIsTyped(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	ec := runCanceled(t, ctx, 1, ErrCanceled)
	assertCountersQuiesced(t, ec)
}

func TestCancelStopsShortestPathScan(t *testing.T) {
	// K12: ~e*10! simple paths between any two vertices — Yen-style
	// enumeration cannot finish inside the deadline.
	gv := denseCyclicFixture(t, 12)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	ec := NewContext(0)
	ec.Bind(ctx)
	// K-shortest simple paths over a dense cyclic graph with a large K:
	// Yen-style enumeration explodes without cancellation.
	spec := PathScanSpec{
		GV: gv, Alias: "P", Phys: PhysSP, MinLen: 1, WeightAttr: "ID",
		KPaths: 1 << 20, StartExpr: intLit(1), EndExpr: intLit(2),
	}
	_, err := Collect(ec, NewPathProbeJoin(Singleton{}, spec, nil))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestBindNilAndBackgroundContextsAreFree(t *testing.T) {
	ec := NewContext(0)
	ec.Bind(nil)
	if ec.Done() != nil || ec.CheckCancel() != nil {
		t.Fatal("nil bind must be a no-op")
	}
	// A context that can never fire (no deadline, no cancel) is skipped.
	ec.Bind(context.Background())
	if ec.Done() != nil {
		t.Fatal("background bind must be a no-op")
	}
	gv := denseCyclicFixture(t, 4)
	rows, err := Collect(ec, NewPathProbeJoin(Singleton{}, PathScanSpec{
		GV: gv, Alias: "P", Phys: PhysBFS, MinLen: 1, MaxLen: 2, KPaths: 1,
		StartExpr: intLit(1),
	}, nil))
	if err != nil || len(rows) == 0 {
		t.Fatalf("unbound context broke execution: %v (%d rows)", err, len(rows))
	}
}

func TestCancelAbortsRelationalPipelines(t *testing.T) {
	// A pre-canceled context aborts scans, joins, sorts, and aggregates at
	// their first cooperative check instead of doing the work.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := newTable(t, "a", 64)
	b := newTable(t, "b", 64)
	sa, sb := NewSeqScan(a, "a", nil), NewSeqScan(b, "b", nil)
	for name, op := range map[string]Operator{
		"seqscan": sa,
		"nlj":     NewNestedLoopJoin(sa, sb, nil),
		"sort":    NewSort(sa, []SortKey{{E: col(t, sa.Schema(), "a", "id")}}),
		"agg": NewHashAggregate(sa, nil, []AggSpec{{Name: "COUNT"}},
			types.NewSchema(types.Column{Name: "n", Type: types.KindInt})),
		"materialize": NewMaterialize(sa),
	} {
		ec := NewContext(0)
		ec.Bind(ctx)
		if _, err := Collect(ec, op); !errors.Is(err, ErrCanceled) {
			t.Errorf("%s: err = %v, want ErrCanceled", name, err)
		}
		if used := ec.MemUsed(); used != 0 {
			t.Errorf("%s: leaked %d bytes of charged memory on cancel", name, used)
		}
	}
}
