GO ?= go

.PHONY: all build test race fuzz bench fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The merge gate: every package under the race detector.
race:
	$(GO) test -race ./...

# Short fuzz smoke over the SQL parser (CI runs the same budget).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=30s ./internal/sql

# Sequential-vs-parallel traversal timings; emits the perf-trajectory
# artifact CI uploads on every run.
bench:
	$(GO) run ./cmd/grbench -exp concurrency -queries 5 -json BENCH_concurrency.json

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
	rm -f BENCH_concurrency.json
