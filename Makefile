GO ?= go

.PHONY: all build test race fuzz bench metrics csr analytics mvcc wire oracle chaos diskchaos recover durbench fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The merge gate: every package under the race detector.
race:
	$(GO) test -race ./...

# Short fuzz smoke over the SQL parser (CI runs the same budget).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=30s ./internal/sql

# Differential/metamorphic correctness oracle: randomized graph-view
# workloads cross-checked against independent baselines. On a violation it
# writes ORACLE_repro.sql and prints a one-line seed repro. CI runs the
# same harness under -race with a wall-clock budget.
oracle:
	$(GO) run ./cmd/grbench -experiment oracle -seed 42 -duration 30s

# Network-fault chaos soak: the server endures a 30s storm of injected
# delays, truncated writes, resets, accept errors, panics, and deadline
# aborts under the race detector. CI runs the same budget.
chaos:
	GRF_SOAK=30 $(GO) test -race -v -run 'TestChaos' -timeout 8m ./internal/server

# Disk-fault chaos soak: a durable engine endures a 30s seeded storm of
# injected WAL write/sync/truncate failures and disk-full windows,
# degrading to read-only and self-healing each cycle, with reads checked
# differentially against a non-durable reference and a kill-and-recover
# finale — under the race detector. The degraded-write retry-policy and
# health-surface agreement tests ride along. CI runs the same budget.
diskchaos:
	GRF_SOAK=30 $(GO) test -race -v -timeout 8m \
		-run 'TestDiskFault|TestDegradedMode|TestDiskFull|TestDegradedWrite|TestHealthSurfaces' \
		./internal/core ./internal/server

# Kill-and-recover battery: the focused durability/recovery tests, a 20s
# kill-and-recover chaos soak (injected WAL faults, checkpoint crash
# windows, torn tails, differential against a non-durable reference), a
# WAL-replay fuzz budget, and the crash-recovery oracle. CI's recovery job
# runs the same battery.
recover:
	$(GO) test -race -v ./internal/wal
	GRF_SOAK=20 $(GO) test -race -v -timeout 8m \
		-run 'Recovery|Durab|Checkpoint|WAL|Replay|Alloc|UndoInsert|Snapshot' \
		./internal/core ./internal/storage
	$(GO) test -race -run='^$$' -fuzz=FuzzWALReplay -fuzztime=30s ./internal/core
	$(GO) run ./cmd/grbench -experiment recovery -seed 42 -duration 30s

# Durability cost: per-insert WAL append overhead per fsync policy against
# a no-WAL baseline, plus replay and checkpoint timings. CI uploads
# BENCH_durability.json on every run.
durbench:
	$(GO) run ./cmd/grbench -exp durability -json BENCH_durability.json

# Sequential-vs-parallel traversal timings plus the MVCC mixed-workload
# storm; emits the perf-trajectory artifact CI uploads on every run and
# gates it against the committed baseline (see `make mvcc`).
bench:
	$(GO) run ./cmd/grbench -exp concurrency -queries 5 -json BENCH_concurrency.json -baseline BENCH_concurrency_baseline.json
	$(GO) run ./cmd/grbench -exp wire -json BENCH_wire.json -baseline BENCH_wire_baseline.json

# MVCC storm lane: the stalled-reader/deadline regression tests and the
# versioned-read battery under the race detector, the race-gated
# mixed-workload storm (readers + analytics TVFs vs a sustained DML
# writer), then the concurrency benchmark with its regression gate — the
# run fails if read p99 under the write storm leaves 2x of the no-writer
# baseline or regresses past the committed BENCH_concurrency_baseline.json
# floor.
mvcc:
	$(GO) test -race -v -timeout 8m \
		-run 'TestStalledReader|TestExpiredReader|TestVersioned|TestPreparedReplans|TestReadOnlyDispatch|TestMVCC|TestVersionRegistry|TestConcurrent' \
		./internal/core
	$(GO) test -race -v -timeout 8m -run 'TestMVCCStorm' ./internal/bench
	$(GO) run ./cmd/grbench -exp concurrency -queries 5 -json BENCH_concurrency.json -baseline BENCH_concurrency_baseline.json

# Wire-protocol lane: the negotiation matrix, pipelining, prepared-over-
# wire, COPY ingest, pool, and frame-corruption tests under the race
# detector, then the wire benchmark with its regression gate — the run
# fails if pipelined point-query throughput drops under 3x the JSON
# round-trip rate, if COPY ingest drops under 20x per-statement inserts
# or under the committed absolute floor (halved on a one-core host), or
# if either ratio collapses vs BENCH_wire_baseline.json.
wire:
	$(GO) test -race -v -timeout 8m \
		-run 'TestNegotiation|TestClientOneWrite|TestPipeline|TestPrepared|TestCopyIn|TestOversizedFrame|TestFramedTraffic|TestPool' \
		./internal/server ./internal/wire
	$(GO) run ./cmd/grbench -exp wire -json BENCH_wire.json -baseline BENCH_wire_baseline.json

# Observability overhead: proves the metrics layer is free when idle and
# that armed slow-query instrumentation stays within a few percent on real
# traversal statements. CI uploads the artifact on every run.
metrics:
	$(GO) run ./cmd/grbench -exp observability -queries 10 -json BENCH_observability.json

# CSR layout benchmark + regression gate: pointer vs CSR traversal kernels
# and layout-forced engine runs. Fails if any gated speedup drops more than
# 10% below the committed baseline floor, or if a steady-state CSR kernel
# traversal allocates. CI uploads BENCH_csr.json on every run.
csr:
	$(GO) run ./cmd/grbench -exp csr -queries 6 -json BENCH_csr.json -baseline BENCH_csr_baseline.json

# Whole-graph analytics benchmark + regression gate: naive single-threaded
# references vs the CSR kernels behind the PAGERANK / CONNECTED_COMPONENTS
# / LABEL_PROPAGATION / DEGREE_CENTRALITY table-valued functions. Fails if
# any gated speedup drops more than 10% below the committed baseline
# floor, or if a steady-state components/degree run allocates. CI uploads
# BENCH_analytics.json on every run.
analytics:
	$(GO) run ./cmd/grbench -exp analytics -queries 6 -json BENCH_analytics.json -baseline BENCH_analytics_baseline.json

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
	rm -f BENCH_concurrency.json BENCH_observability.json BENCH_csr.json BENCH_analytics.json BENCH_wire.json ORACLE_repro.sql
