package grfusion

// bench_test.go wires every table and figure of the paper's evaluation
// (§7) into `go test -bench`. Each BenchmarkTableN/BenchmarkFigN runs the
// corresponding experiment from internal/bench at a reduced scale and
// logs the paper-style rows (run with -v to see them); cmd/grbench runs
// the same experiments at full scale with flags. The remaining benchmarks
// are micro-benchmarks of the engine's hot paths.

import (
	"fmt"
	"testing"

	"grfusion/internal/bench"
)

func benchCfg() bench.Config {
	return bench.Config{Scale: 0.3, Queries: 5, Seed: 42, MaxJoinHops: 4}
}

func runExperiment(b *testing.B, fn func(bench.Config) []bench.Row) {
	b.Helper()
	cfg := benchCfg()
	var rows []bench.Row
	for i := 0; i < b.N; i++ {
		rows = fn(cfg)
	}
	if len(rows) == 0 {
		b.Fatal("experiment produced no rows")
	}
	b.Log("\n" + bench.Format(rows))
}

func BenchmarkTable2_Datasets(b *testing.B)              { runExperiment(b, bench.Table2) }
func BenchmarkFig7_Reachability(b *testing.B)            { runExperiment(b, bench.Fig7) }
func BenchmarkFig8_ConstrainedReachability(b *testing.B) { runExperiment(b, bench.Fig8) }
func BenchmarkFig9_ShortestPaths(b *testing.B)           { runExperiment(b, bench.Fig9) }
func BenchmarkFig10_Triangles(b *testing.B)              { runExperiment(b, bench.Fig10) }
func BenchmarkTable3_ViewBuild(b *testing.B)             { runExperiment(b, bench.Table3) }
func BenchmarkFig11_Updates(b *testing.B)                { runExperiment(b, bench.Fig11) }
func BenchmarkAblation_DesignChoices(b *testing.B)       { runExperiment(b, bench.Ablation) }

// --- Micro-benchmarks -------------------------------------------------------

// socialDB builds a mid-sized social graph for operator micro-benchmarks.
func socialDB(b *testing.B, users, friendsPer int) *DB {
	b.Helper()
	db := Open(Config{})
	db.MustExec(`CREATE TABLE Users (uid BIGINT PRIMARY KEY, name VARCHAR, job VARCHAR)`)
	db.MustExec(`CREATE TABLE Friends (fid BIGINT PRIMARY KEY, a BIGINT, b BIGINT, since BIGINT)`)
	jobs := []string{"Lawyer", "Doctor", "Engineer"}
	batch := ""
	for i := 0; i < users; i++ {
		if batch == "" {
			batch = "INSERT INTO Users VALUES "
		} else {
			batch += ", "
		}
		batch += fmt.Sprintf("(%d, 'user%d', '%s')", i, i, jobs[i%3])
		if (i+1)%500 == 0 {
			db.MustExec(batch)
			batch = ""
		}
	}
	if batch != "" {
		db.MustExec(batch)
	}
	batch = ""
	fid := 0
	for i := 0; i < users; i++ {
		for j := 1; j <= friendsPer; j++ {
			if batch == "" {
				batch = "INSERT INTO Friends VALUES "
			} else {
				batch += ", "
			}
			batch += fmt.Sprintf("(%d, %d, %d, %d)", fid, i, (i+j*7)%users, 1990+fid%30)
			fid++
			if fid%500 == 0 {
				db.MustExec(batch)
				batch = ""
			}
		}
	}
	if batch != "" {
		db.MustExec(batch)
	}
	db.MustExec(`CREATE UNDIRECTED GRAPH VIEW Social
		VERTEXES(ID = uid, name = name, job = job) FROM Users
		EDGES(ID = fid, FROM = a, TO = b, since = since) FROM Friends`)
	return db
}

func BenchmarkVertexScan(b *testing.B) {
	db := socialDB(b, 2000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT COUNT(*) FROM Social.Vertexes VS WHERE VS.job = 'Lawyer'`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPathScanReachabilityBFS(b *testing.B) {
	db := socialDB(b, 2000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := fmt.Sprintf(`SELECT PS.PathString FROM Social.Paths PS HINT(BFS)
			WHERE PS.StartVertex.Id = %d AND PS.EndVertex.Id = %d LIMIT 1`, i%2000, (i+997)%2000)
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPathScanFriendsOfFriends(b *testing.B) {
	db := socialDB(b, 2000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := fmt.Sprintf(`SELECT COUNT(P) FROM Social.Paths P
			WHERE P.StartVertex.Id = %d AND P.Length = 2`, i%2000)
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShortestPathSPScan(b *testing.B) {
	db := socialDB(b, 2000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := fmt.Sprintf(`SELECT TOP 1 PS.PathString FROM Social.Paths PS HINT(SHORTESTPATH(since))
			WHERE PS.StartVertex.Id = %d AND PS.EndVertex.Id = %d`, i%2000, (i+1333)%2000)
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoin(b *testing.B) {
	db := socialDB(b, 2000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT COUNT(*) FROM Users U, Friends F WHERE U.uid = F.a`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertWithViewMaintenance(b *testing.B) {
	db := socialDB(b, 1000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := 1_000_000 + i
		db.MustExec(fmt.Sprintf("INSERT INTO Friends VALUES (%d, %d, %d, 2020)", id, i%1000, (i+13)%1000))
		db.MustExec(fmt.Sprintf("DELETE FROM Friends WHERE fid = %d", id))
	}
}

func BenchmarkParseAndPlanOnly(b *testing.B) {
	db := socialDB(b, 100, 2)
	q := `SELECT PS.EndVertex.name FROM Users U, Social.Paths PS
		WHERE U.job = 'Lawyer' AND PS.StartVertex.Id = U.uid AND PS.Length = 2`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Explain(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTriangleCount(b *testing.B) {
	db := socialDB(b, 500, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := `SELECT COUNT(P) FROM Social.Paths P
			WHERE P.Length = 3 AND P.Edges[2].EndVertex = P.Edges[0].StartVertex`
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}
