package grfusion

import (
	"bytes"
	"strings"
	"testing"
)

func openSocial(t *testing.T) *DB {
	t.Helper()
	db := Open(Config{})
	if err := db.ExecScript(`
		CREATE TABLE Users (uid BIGINT PRIMARY KEY, name VARCHAR, job VARCHAR);
		CREATE TABLE Friends (fid BIGINT PRIMARY KEY, a BIGINT, b BIGINT, since BIGINT);
		INSERT INTO Users VALUES (1,'ann','Lawyer'),(2,'bob','Doctor'),(3,'cady','Engineer');
		INSERT INTO Friends VALUES (10,1,2,2001),(11,2,3,2010);
		CREATE UNDIRECTED GRAPH VIEW Social
			VERTEXES(ID = uid, name = name, job = job) FROM Users
			EDGES(ID = fid, FROM = a, TO = b, since = since) FROM Friends;
	`); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestExecAndQuery(t *testing.T) {
	db := openSocial(t)
	res, err := db.Query(`SELECT name FROM Users WHERE job = 'Lawyer'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "ann" {
		t.Fatalf("rows: %v", res.Rows)
	}
	// Query on a non-query statement errors.
	if _, err := db.Query(`INSERT INTO Users VALUES (9,'x','y')`); err == nil {
		t.Error("Query accepted DML")
	}
	// Exec reports affected rows.
	r, err := db.Exec(`DELETE FROM Users WHERE uid = 9`)
	if err != nil || r.Affected != 1 {
		t.Fatalf("affected: %+v, %v", r, err)
	}
}

func TestQueryScalar(t *testing.T) {
	db := openSocial(t)
	v, err := db.QueryScalar(`SELECT COUNT(*) FROM Users`)
	if err != nil || v.I != 3 {
		t.Fatalf("scalar: %v %v", v, err)
	}
	if _, err := db.QueryScalar(`SELECT uid FROM Users`); err == nil {
		t.Error("multi-row scalar accepted")
	}
}

func TestMustExecPanics(t *testing.T) {
	db := openSocial(t)
	defer func() {
		if recover() == nil {
			t.Error("MustExec did not panic on bad SQL")
		}
	}()
	db.MustExec(`SELEC nonsense`)
}

func TestCrossModelQueryThroughPublicAPI(t *testing.T) {
	db := openSocial(t)
	res, err := db.Query(`
		SELECT PS.EndVertex.name FROM Users U, Social.Paths PS
		WHERE U.name = 'ann' AND PS.StartVertex.Id = U.uid AND PS.Length = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "cady" {
		t.Fatalf("fof: %v", res.Rows)
	}
}

func TestPreparedStatements(t *testing.T) {
	db := openSocial(t)
	stmt, err := db.Prepare(`
		SELECT PS.PathString FROM Social.Paths PS
		WHERE PS.StartVertex.Id = ? AND PS.EndVertex.Id = ? LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams() != 2 {
		t.Fatalf("nparams: %d", stmt.NumParams())
	}
	res, err := stmt.Query(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !strings.Contains(res.Rows[0][0].S, "->") {
		t.Fatalf("prepared result: %v", res.Rows)
	}
	// Re-execution with different parameters reuses the plan.
	res, err = stmt.Query(3, 1)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("re-exec: %v %v", res, err)
	}
	// Wrong arity and wrong types error cleanly.
	if _, err := stmt.Query(1); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := stmt.Query(1, struct{}{}); err == nil {
		t.Error("bad type accepted")
	}
	// Prepare rejects DML.
	if _, err := db.Prepare(`DELETE FROM Users`); err == nil {
		t.Error("prepared DML accepted")
	}
}

func TestPreparedWithRelationalParams(t *testing.T) {
	db := openSocial(t)
	db.MustExec(`CREATE INDEX ix_job ON Users (job)`)
	stmt, err := db.Prepare(`SELECT name FROM Users WHERE job = ? ORDER BY name`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stmt.Query("Doctor")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].S != "bob" {
		t.Fatalf("param query: %v %v", res, err)
	}
	res, err = stmt.Query("Lawyer")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].S != "ann" {
		t.Fatalf("param re-query: %v %v", res, err)
	}
}

func TestToValueConversions(t *testing.T) {
	cases := []struct {
		in   any
		kind Kind
	}{
		{nil, KindNull}, {true, KindBool}, {int(1), KindInt}, {int32(1), KindInt},
		{int64(1), KindInt}, {float32(1), KindFloat}, {float64(1), KindFloat},
		{"x", KindString},
	}
	for _, c := range cases {
		v, err := ToValue(c.in)
		if err != nil || v.Kind != c.kind {
			t.Errorf("ToValue(%T) = %v kind %v, err %v", c.in, v, v.Kind, err)
		}
	}
	if _, err := ToValue([]int{1}); err == nil {
		t.Error("slice accepted")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	db := openSocial(t)
	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := Open(Config{})
	if err := db2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	// Data, topology, and traversability all survive.
	v, err := db2.QueryScalar(`SELECT COUNT(*) FROM Friends`)
	if err != nil || v.I != 2 {
		t.Fatalf("restored rows: %v %v", v, err)
	}
	res, err := db2.Query(`
		SELECT PS.PathString FROM Social.Paths PS
		WHERE PS.StartVertex.Id = 1 AND PS.EndVertex.Id = 3 LIMIT 1`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("restored traversal: %v %v", res, err)
	}
	// Updates still maintain the restored view.
	db2.MustExec(`DELETE FROM Friends WHERE fid = 11`)
	res, _ = db2.Query(`
		SELECT PS.PathString FROM Social.Paths PS
		WHERE PS.StartVertex.Id = 1 AND PS.EndVertex.Id = 3 LIMIT 1`)
	if len(res.Rows) != 0 {
		t.Fatal("restored view not maintained")
	}
	// Restore into a non-empty database fails.
	var buf2 bytes.Buffer
	if err := db.Snapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	if err := db2.Restore(&buf2); err == nil {
		t.Error("restore into non-empty db accepted")
	}
}

func TestExplainPublicAPI(t *testing.T) {
	db := openSocial(t)
	text, err := db.Explain(`SELECT name FROM Users WHERE uid = 1`)
	if err != nil || !strings.Contains(text, "Scan") {
		t.Fatalf("explain: %q %v", text, err)
	}
	if _, err := db.Explain(`DELETE FROM Users`); err == nil {
		t.Error("explain of DML accepted")
	}
}

func TestMemLimitConfig(t *testing.T) {
	db := Open(Config{MemLimit: 64})
	db.MustExec(`CREATE TABLE T (a BIGINT PRIMARY KEY, s VARCHAR)`)
	db.MustExec(`INSERT INTO T VALUES (1,'aaaaaaaaaaaaaaaa'),(2,'bbbbbbbbbbbbbbbb')`)
	if _, err := db.Query(`SELECT COUNT(*) FROM T A, T B`); err == nil {
		t.Error("memory limit ignored")
	}
}

func TestConfigDisablePushdownStillCorrect(t *testing.T) {
	run := func(cfg Config) int {
		db := Open(cfg)
		if err := db.ExecScript(`
			CREATE TABLE N (nid BIGINT PRIMARY KEY);
			CREATE TABLE E (eid BIGINT PRIMARY KEY, a BIGINT, b BIGINT, w BIGINT);
			INSERT INTO N VALUES (1),(2),(3),(4);
			INSERT INTO E VALUES (1,1,2,5),(2,2,3,50),(3,3,4,5),(4,1,3,5);
			CREATE DIRECTED GRAPH VIEW G VERTEXES(ID=nid) FROM N
				EDGES(ID=eid, FROM=a, TO=b, w=w) FROM E;
		`); err != nil {
			t.Fatal(err)
		}
		res, err := db.Query(`SELECT COUNT(P) FROM G.Paths P WHERE P.StartVertex.Id = 1 AND P.Edges[0..*].w < 10`)
		if err != nil {
			t.Fatal(err)
		}
		return int(res.Rows[0][0].I)
	}
	a := run(Config{})
	b := run(Config{DisablePushdown: true})
	c := run(Config{ForceTraversal: "bfs"})
	if a != b || a != c {
		t.Fatalf("configs disagree: %d %d %d", a, b, c)
	}
}

// TestHealthPublicAPI pins the durability-health surface of the public
// API: a non-durable database reports healthy/non-durable, and a durable
// one exposes the state and the ErrDegraded re-export matches what the
// engine returns for writes rejected in degraded mode.
func TestHealthPublicAPI(t *testing.T) {
	db := Open(Config{})
	h := db.Health()
	if h.State != StateHealthy || h.Durable {
		t.Fatalf("in-memory health = %+v, want healthy and non-durable", h)
	}

	dur, _, err := OpenDurable(Config{WALDir: t.TempDir(), WALFsync: "off"})
	if err != nil {
		t.Fatal(err)
	}
	defer dur.Close()
	h = dur.Health()
	if h.State != StateHealthy || !h.Durable {
		t.Fatalf("durable health = %+v, want healthy and durable", h)
	}
	if _, err := dur.Exec(`SHOW HEALTH`); err != nil {
		t.Fatalf("SHOW HEALTH: %v", err)
	}
}
