// Client/server deployment: the paper's host system (VoltDB) is a
// client/server database. This example starts a GRFusion server on an
// ephemeral port, connects a client over TCP, builds a small knowledge
// graph, and runs graph-relational queries across the wire.
package main

import (
	"fmt"
	"log"
	"net"

	"grfusion/internal/core"
	"grfusion/internal/server"
)

func main() {
	// Server side: an engine behind a TCP listener.
	eng := core.New(core.Options{})
	srv := server.New(eng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown()
	fmt.Println("server listening on", ln.Addr())

	// Client side: plain TCP, newline-delimited JSON.
	c, err := server.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	statements := []string{
		`CREATE TABLE Concepts (cid BIGINT PRIMARY KEY, name VARCHAR, kind VARCHAR)`,
		`CREATE TABLE Links (lid BIGINT PRIMARY KEY, src BIGINT, dst BIGINT, rel VARCHAR)`,
		`INSERT INTO Concepts VALUES
			(1,'golang','language'), (2,'compiler','tool'), (3,'gc','component'),
			(4,'runtime','component'), (5,'goroutine','concept'), (6,'channel','concept')`,
		`INSERT INTO Links VALUES
			(1,1,2,'builtWith'), (2,1,4,'ships'), (3,4,3,'contains'),
			(4,4,5,'schedules'), (5,5,6,'communicatesVia')`,
		`CREATE DIRECTED GRAPH VIEW Knowledge
			VERTEXES(ID = cid, name = name, kind = kind) FROM Concepts
			EDGES(ID = lid, FROM = src, TO = dst, rel = rel) FROM Links`,
	}
	for _, q := range statements {
		if _, err := c.Exec(q); err != nil {
			log.Fatalf("%s: %v", q, err)
		}
	}

	// What is transitively connected to golang, and through what chain?
	res, err := c.Exec(`
		SELECT PS.EndVertex.name, PS.Length, PS.PathString
		FROM Concepts C, Knowledge.Paths PS
		WHERE C.name = 'golang' AND PS.StartVertex.Id = C.cid
		ORDER BY PS.Length, PS.EndVertex.name`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nconcepts reachable from 'golang':")
	for _, row := range res.Rows {
		fmt.Printf("  %-10s (%s hop(s))  %s\n", row[0], row[1], row[2])
	}

	// Relationship-typed traversal, still over the wire.
	res, err = c.Exec(`
		SELECT PS.EndVertex.name FROM Knowledge.Paths PS
		WHERE PS.StartVertex.Id = 1
		  AND PS.Edges[0..*].rel IN ('ships', 'schedules', 'communicatesVia')
		ORDER BY PS.EndVertex.name`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfollowing only runtime relationships:")
	for _, row := range res.Rows {
		fmt.Printf("  %s\n", row[0])
	}
}
