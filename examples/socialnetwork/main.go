// Social-network analytics: the paper's motivating domain. Generates a
// synthetic community-structured network, then runs the paper's query
// shapes — vertex scans with fan-out properties (Listing 5),
// friends-of-friends (Listing 2), triangle counting (Listing 4), and
// online updates that keep the graph view consistent (§3.3).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"grfusion"
)

const (
	communities = 30
	commSize    = 10
)

func main() {
	db := grfusion.Open(grfusion.Config{})
	loadNetwork(db)

	// Listing 5: vertex scan + relational operators; FanOut is an O(1)
	// property of the native topology.
	res, err := db.Query(`
		SELECT VS.name, VS.fanOut
		FROM Social.Vertexes VS
		WHERE VS.fanOut >= 8
		ORDER BY VS.fanOut DESC, VS.name
		LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("most connected members:")
	for _, row := range res.Rows {
		fmt.Printf("  %-10s degree %s\n", row[0], row[1])
	}

	// Listing 2: friends-of-friends of all lawyers, restricted to
	// friendships formed after 2005 — the relational side (a table scan
	// over Users) probes the traversal operator per Figure 6.
	res, err = db.Query(`
		SELECT U.name, COUNT(*) AS fof
		FROM Users U, Social.Paths PS
		WHERE U.job = 'Lawyer'
		  AND PS.StartVertex.Id = U.uid
		  AND PS.Length = 2
		  AND PS.Edges[0..*].since > 2005
		GROUP BY U.name
		ORDER BY fof DESC, U.name
		LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlawyers with the most friends-of-friends (post-2005 ties):")
	for _, row := range res.Rows {
		fmt.Printf("  %-10s %s\n", row[0], row[1])
	}

	// Listing 4: triangle counting via the cycle-closure pattern.
	v, err := db.QueryScalar(`
		SELECT COUNT(P) FROM Social.Paths P
		WHERE P.Length = 3 AND P.Edges[2].EndVertex = P.Edges[0].StartVertex`)
	if err != nil {
		log.Fatal(err)
	}
	// Each undirected triangle is visited as 6 closed paths.
	fmt.Printf("\ntriangles: %d (%d closed length-3 paths)\n", v.I/6, v.I)

	// §3.3: online updates — a new friendship is traversable immediately,
	// inside the same transaction that inserted the tuple.
	db.MustExec(`INSERT INTO Users VALUES (9999, 'newcomer', 'Doctor')`)
	db.MustExec(`INSERT INTO Friends VALUES (99990, 9999, 0, 2024)`)
	v, err = db.QueryScalar(`
		SELECT COUNT(*) FROM Social.Paths PS
		WHERE PS.StartVertex.Id = 9999 AND PS.Length = 1`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter INSERT: newcomer has %d direct connection(s) in the view\n", v.I)
}

// loadNetwork builds a community-structured friendship graph.
func loadNetwork(db *grfusion.DB) {
	if err := db.ExecScript(`
		CREATE TABLE Users (uid BIGINT PRIMARY KEY, name VARCHAR, job VARCHAR);
		CREATE TABLE Friends (fid BIGINT PRIMARY KEY, a BIGINT, b BIGINT, since BIGINT);
	`); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	jobs := []string{"Lawyer", "Doctor", "Engineer", "Teacher"}
	var users, friends []string
	fid := 0
	for c := 0; c < communities; c++ {
		base := c * commSize
		for i := 0; i < commSize; i++ {
			uid := base + i
			users = append(users, fmt.Sprintf("(%d, 'member%d', '%s')", uid, uid, jobs[rng.Intn(len(jobs))]))
			// Dense intra-community friendships.
			for j := i + 1; j < commSize; j++ {
				if rng.Float64() < 0.5 {
					friends = append(friends, fmt.Sprintf("(%d, %d, %d, %d)",
						fid, uid, base+j, 1995+rng.Intn(30)))
					fid++
				}
			}
		}
		// A couple of bridges to other communities.
		for b := 0; b < 2; b++ {
			oc := rng.Intn(communities)
			if oc == c {
				continue
			}
			friends = append(friends, fmt.Sprintf("(%d, %d, %d, %d)",
				fid, base+rng.Intn(commSize), oc*commSize+rng.Intn(commSize), 1995+rng.Intn(30)))
			fid++
		}
	}
	db.MustExec("INSERT INTO Users VALUES " + strings.Join(users, ", "))
	db.MustExec("INSERT INTO Friends VALUES " + strings.Join(friends, ", "))
	db.MustExec(`
		CREATE UNDIRECTED GRAPH VIEW Social
			VERTEXES(ID = uid, name = name, job = job) FROM Users
			EDGES(ID = fid, FROM = a, TO = b, since = since) FROM Friends`)
}
