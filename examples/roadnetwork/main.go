// Road-network routing: the paper's introduction motivates GRFusion with
// "find the shortest path over a road network while restricting the search
// to certain types of roads, e.g., avoiding toll roads". This example
// builds a grid road network with toll segments and answers exactly that
// query with the SPScan operator (Listing 6's shape), including TOP-k
// alternative routes.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"grfusion"
)

const side = 15 // grid side: side*side intersections

func main() {
	db := grfusion.Open(grfusion.Config{})
	loadRoads(db)

	src := 0             // northwest corner
	dst := side*side - 1 // southeast corner
	pair := [2]int64{int64(src), int64(dst)}

	// Cheapest route, tolls allowed.
	res, err := db.Query(fmt.Sprintf(`
		SELECT TOP 1 PS.PathString, SUM(PS.Edges.dist), PS.Length
		FROM Roads.Paths PS HINT(SHORTESTPATH(dist))
		WHERE PS.StartVertex.Id = %d AND PS.EndVertex.Id = %d`, pair[0], pair[1]))
	if err != nil {
		log.Fatal(err)
	}
	report("fastest route (tolls allowed)", res)

	// Cheapest route avoiding toll roads: the toll predicate is pushed
	// into the traversal (§6.2), so toll segments are never expanded.
	res, err = db.Query(fmt.Sprintf(`
		SELECT TOP 1 PS.PathString, SUM(PS.Edges.dist), PS.Length
		FROM Roads.Paths PS HINT(SHORTESTPATH(dist))
		WHERE PS.StartVertex.Id = %d AND PS.EndVertex.Id = %d
		  AND PS.Edges[0..*].toll = false`, pair[0], pair[1]))
	if err != nil {
		log.Fatal(err)
	}
	report("fastest route avoiding tolls", res)

	// TOP-3 alternative routes, joined with the intersections relation to
	// resolve street names for the destination.
	res, err = db.Query(fmt.Sprintf(`
		SELECT TOP 3 SUM(PS.Edges.dist) AS total, PS.Length, I.name
		FROM Roads.Paths PS HINT(SHORTESTPATH(dist)), Intersections I
		WHERE PS.StartVertex.Id = %d AND PS.EndVertex.Id = I.nid AND I.nid = %d`,
		pair[0], pair[1]))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop-3 alternative routes:")
	for i, row := range res.Rows {
		fmt.Printf("  #%d  %6s km over %2s segments to %s\n", i+1, row[0], row[1], row[2])
	}

	// Roadwork: closing a segment reroutes traffic instantly — the DELETE
	// maintains the topology inside its own transaction (§3.3).
	before, _ := db.QueryScalar(fmt.Sprintf(
		`SELECT COUNT(*) FROM Roads.Edges E WHERE E.ID >= 0 AND %d = %d`, 1, 1))
	db.MustExec(`DELETE FROM Segments WHERE sid = 0`)
	after, _ := db.QueryScalar(`SELECT COUNT(*) FROM Roads.Edges E`)
	fmt.Printf("\nroadwork: segments %s -> %s after closing segment 0\n", before, after)
}

func report(title string, res *grfusion.Result) {
	fmt.Println(title + ":")
	if len(res.Rows) == 0 {
		fmt.Println("  unreachable")
		return
	}
	row := res.Rows[0]
	fmt.Printf("  %s km over %s segments\n", row[1], row[2])
	fmt.Printf("  route: %s\n", ellipsize(row[0].String(), 70))
}

func ellipsize(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n/2] + " … " + s[len(s)-n/2:]
}

func loadRoads(db *grfusion.DB) {
	if err := db.ExecScript(`
		CREATE TABLE Intersections (nid BIGINT PRIMARY KEY, name VARCHAR);
		CREATE TABLE Segments (sid BIGINT PRIMARY KEY, a BIGINT, b BIGINT, dist DOUBLE, toll BOOLEAN);
	`); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var nodes, segs []string
	id := func(r, c int) int { return r*side + c }
	sid := 0
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			nodes = append(nodes, fmt.Sprintf("(%d, 'x%d/%d')", id(r, c), r, c))
			add := func(to int) {
				toll := "false"
				dist := 1.0 + rng.Float64()
				// Diagonal express corridors are fast but tolled.
				if rng.Float64() < 0.15 {
					toll = "true"
					dist *= 0.4
				}
				segs = append(segs, fmt.Sprintf("(%d, %d, %d, %.3f, %s)", sid, id(r, c), to, dist, toll))
				sid++
			}
			if c+1 < side {
				add(id(r, c+1))
			}
			if r+1 < side {
				add(id(r+1, c))
			}
		}
	}
	db.MustExec("INSERT INTO Intersections VALUES " + strings.Join(nodes, ", "))
	db.MustExec("INSERT INTO Segments VALUES " + strings.Join(segs, ", "))
	db.MustExec(`
		CREATE UNDIRECTED GRAPH VIEW Roads
			VERTEXES(ID = nid, name = name) FROM Intersections
			EDGES(ID = sid, FROM = a, TO = b, dist = dist, toll = toll) FROM Segments`)
}
