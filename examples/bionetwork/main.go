// Biological-network analysis: Listing 3 of the paper — does Protein X
// interact with Protein Y directly or transitively, restricted to certain
// interaction types? Reachability through a typed interaction network,
// with the IN-list predicate pushed into the traversal and LIMIT 1
// stopping the lazy PathScan at the first witness path.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"grfusion"
)

const proteins = 400

func main() {
	db := grfusion.Open(grfusion.Config{})
	loadInteractome(db)

	// Listing 3: reachability through covalent/stable interactions only.
	query := `
		SELECT PS.PathString
		FROM Proteins Pr1, Proteins Pr2, BioNetwork.Paths PS
		WHERE Pr1.name = 'P0000' AND Pr2.name = '%s'
		  AND PS.StartVertex.Id = Pr1.pid AND PS.EndVertex.Id = Pr2.pid
		  AND PS.Edges[0..*].itype IN ('covalent', 'stable')
		LIMIT 1`
	for _, target := range []string{"P0042", "P0399", "P0007"} {
		res, err := db.Query(fmt.Sprintf(query, target))
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Rows) == 0 {
			fmt.Printf("P0000 -/-> %s through covalent/stable interactions\n", target)
		} else {
			fmt.Printf("P0000 ---> %s: %s\n", target, res.Rows[0][0])
		}
	}

	// Bounded-depth variant: metabolic neighborhoods are usually probed a
	// few hops deep; the optimizer turns the Length predicate into a
	// traversal bound (§6.1).
	v, err := db.QueryScalar(`
		SELECT COUNT(*) FROM Proteins Pr, BioNetwork.Paths PS
		WHERE Pr.name = 'P0000' AND PS.StartVertex.Id = Pr.pid AND PS.Length <= 2`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nproteins within 2 interaction hops of P0000: %d\n", v.I)

	// Aggregate over path edges: total interaction confidence along a
	// witness path must exceed a threshold.
	res, err := db.Query(`
		SELECT PS.PathString, SUM(PS.Edges.conf)
		FROM BioNetwork.Paths PS
		WHERE PS.StartVertex.Id = 0 AND PS.Length = 3 AND SUM(PS.Edges.conf) < 1.2
		ORDER BY SUM(PS.Edges.conf)
		LIMIT 3`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlowest-confidence 3-hop cascades from P0000 (conf sum < 1.2):")
	for _, row := range res.Rows {
		fmt.Printf("  sum=%.3f  %s\n", row[1].AsFloat(), row[0])
	}
	if len(res.Rows) == 0 {
		fmt.Println("  (none below the threshold)")
	}
}

func loadInteractome(db *grfusion.DB) {
	if err := db.ExecScript(`
		CREATE TABLE Proteins (pid BIGINT PRIMARY KEY, name VARCHAR, family VARCHAR);
		CREATE TABLE Interactions (iid BIGINT PRIMARY KEY, p1 BIGINT, p2 BIGINT, itype VARCHAR, conf DOUBLE);
	`); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	families := []string{"kinase", "ligase", "receptor", "transporter"}
	itypes := []string{"covalent", "stable", "transient"}
	var ps, is []string
	for i := 0; i < proteins; i++ {
		ps = append(ps, fmt.Sprintf("(%d, 'P%04d', '%s')", i, i, families[rng.Intn(len(families))]))
	}
	iid := 0
	for i := 1; i < proteins; i++ {
		// Preferential attachment keeps the interactome scale-free.
		degree := 2 + rng.Intn(3)
		for d := 0; d < degree; d++ {
			j := rng.Intn(i)
			is = append(is, fmt.Sprintf("(%d, %d, %d, '%s', %.3f)",
				iid, i, j, itypes[rng.Intn(len(itypes))], 0.2+rng.Float64()*0.8))
			iid++
		}
	}
	db.MustExec("INSERT INTO Proteins VALUES " + strings.Join(ps, ", "))
	db.MustExec("INSERT INTO Interactions VALUES " + strings.Join(is, ", "))
	db.MustExec(`
		CREATE UNDIRECTED GRAPH VIEW BioNetwork
			VERTEXES(ID = pid, name = name, family = family) FROM Proteins
			EDGES(ID = iid, FROM = p1, TO = p2, itype = itype, conf = conf) FROM Interactions`)
}
