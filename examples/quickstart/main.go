// Quickstart: create tables, build a graph view over them, and run one
// cross-model query mixing a relational filter with a path traversal.
package main

import (
	"fmt"
	"log"

	"grfusion"
)

func main() {
	db := grfusion.Open(grfusion.Config{})

	// 1. Plain relational schema and data.
	if err := db.ExecScript(`
		CREATE TABLE Users (uid BIGINT PRIMARY KEY, name VARCHAR, job VARCHAR);
		CREATE TABLE Friends (fid BIGINT PRIMARY KEY, a BIGINT, b BIGINT, since BIGINT);
		INSERT INTO Users VALUES
			(1, 'ann',  'Lawyer'),
			(2, 'bob',  'Doctor'),
			(3, 'cady', 'Engineer'),
			(4, 'dan',  'Doctor'),
			(5, 'eve',  'Lawyer');
		INSERT INTO Friends VALUES
			(10, 1, 2, 2001),
			(11, 2, 3, 2005),
			(12, 3, 4, 2010),
			(13, 4, 5, 2015),
			(14, 1, 3, 2020);
	`); err != nil {
		log.Fatal(err)
	}

	// 2. Make the latent graph a first-class object: the topology is
	// materialized natively, the attributes stay in Users/Friends.
	db.MustExec(`
		CREATE UNDIRECTED GRAPH VIEW Social
			VERTEXES(ID = uid, name = name, job = job) FROM Users
			EDGES(ID = fid, FROM = a, TO = b, since = since) FROM Friends`)

	// 3. A graph-relational query: friends-of-friends of ann, through
	// friendships formed after 2002.
	res, err := db.Query(`
		SELECT PS.EndVertex.name, PS.PathString
		FROM Users U, Social.Paths PS
		WHERE U.name = 'ann'
		  AND PS.StartVertex.Id = U.uid
		  AND PS.Length = 2
		  AND PS.Edges[0..*].since > 2002
		ORDER BY PS.EndVertex.name`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("friends-of-friends of ann through post-2002 friendships:")
	for _, row := range res.Rows {
		fmt.Printf("  %-6s via %s\n", row[0], row[1])
	}

	// 4. The engine shows its cross-model plan.
	plan, err := db.Explain(`
		SELECT PS.EndVertex.name FROM Users U, Social.Paths PS
		WHERE U.job = 'Lawyer' AND PS.StartVertex.Id = U.uid AND PS.Length = 2`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nquery execution pipeline:")
	fmt.Print(plan)
}
