package grfusion_test

import (
	"fmt"

	"grfusion"
)

// Example demonstrates the end-to-end flow: relational schema, graph
// view, and a cross-model query.
func Example() {
	db := grfusion.Open(grfusion.Config{})
	db.MustExec(`CREATE TABLE Users (uid BIGINT PRIMARY KEY, name VARCHAR)`)
	db.MustExec(`CREATE TABLE Friends (fid BIGINT PRIMARY KEY, a BIGINT, b BIGINT)`)
	db.MustExec(`INSERT INTO Users VALUES (1,'ann'),(2,'bob'),(3,'cady')`)
	db.MustExec(`INSERT INTO Friends VALUES (1,1,2),(2,2,3)`)
	db.MustExec(`
		CREATE UNDIRECTED GRAPH VIEW Social
			VERTEXES(ID = uid, name = name) FROM Users
			EDGES(ID = fid, FROM = a, TO = b) FROM Friends`)

	res, _ := db.Query(`
		SELECT PS.EndVertex.name FROM Users U, Social.Paths PS
		WHERE U.name = 'ann' AND PS.StartVertex.Id = U.uid AND PS.Length = 2`)
	for _, row := range res.Rows {
		fmt.Println(row[0])
	}
	// Output: cady
}

// ExampleDB_Prepare shows VoltDB-style prepared execution: the plan is
// built once and executed with different parameters.
func ExampleDB_Prepare() {
	db := grfusion.Open(grfusion.Config{})
	db.MustExec(`CREATE TABLE N (nid BIGINT PRIMARY KEY)`)
	db.MustExec(`CREATE TABLE E (eid BIGINT PRIMARY KEY, a BIGINT, b BIGINT)`)
	db.MustExec(`INSERT INTO N VALUES (1),(2),(3),(4)`)
	db.MustExec(`INSERT INTO E VALUES (1,1,2),(2,2,3),(3,3,4)`)
	db.MustExec(`CREATE DIRECTED GRAPH VIEW G VERTEXES(ID=nid) FROM N
		EDGES(ID=eid, FROM=a, TO=b) FROM E`)

	reach, _ := db.Prepare(`
		SELECT PS.PathString FROM G.Paths PS
		WHERE PS.StartVertex.Id = ? AND PS.EndVertex.Id = ? LIMIT 1`)
	for _, dst := range []int{3, 4} {
		res, _ := reach.Query(1, dst)
		fmt.Println(res.Rows[0][0])
	}
	// Output:
	// 1-[1]->2-[2]->3
	// 1-[1]->2-[2]->3-[3]->4
}

// ExampleDB_Explain renders the cross-model query execution pipeline.
func ExampleDB_Explain() {
	db := grfusion.Open(grfusion.Config{})
	db.MustExec(`CREATE TABLE N (nid BIGINT PRIMARY KEY)`)
	db.MustExec(`CREATE TABLE E (eid BIGINT PRIMARY KEY, a BIGINT, b BIGINT)`)
	db.MustExec(`INSERT INTO N VALUES (1),(2)`)
	db.MustExec(`INSERT INTO E VALUES (1,1,2)`)
	db.MustExec(`CREATE DIRECTED GRAPH VIEW G VERTEXES(ID=nid) FROM N
		EDGES(ID=eid, FROM=a, TO=b) FROM E`)
	plan, _ := db.Explain(`SELECT PS.PathString FROM G.Paths PS
		WHERE PS.StartVertex.Id = 1 AND PS.Length = 1`)
	fmt.Print(plan)
	// Output:
	// Project PS.PathString
	//   PathScan[DFScan] G len=[1,1] start=1 layout=ptr
	//     Singleton
}
